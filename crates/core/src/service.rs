//! The §2.4 **network-service evolution** example (Fig. 4), written in the
//! J&s surface language: a running dispatcher evolves from `service` to
//! `logService` through a single view change; all other objects follow
//! lazily.

/// The two families plus a `Server` holder class (the calculus has no
/// static fields; the paper's `Server.disp` becomes a holder object).
pub const FAMILIES: &str = r#"
class service {
  class Packet {
    int kind;
    str payload;
  }
  class SomeService {
    int handled = 0;
    str handle(Packet p) {
      this.handled = this.handled + 1;
      return "handled:" + p.payload;
    }
  }
  class EchoService {
    str handle(Packet p) { return "echo:" + p.payload; }
  }
  class Dispatcher {
    SomeService s;
    EchoService e;
    str dispatch(Packet p) {
      if (p.kind == 0) {
        return this.s.handle(p);
      } else {
        return this.e.handle(p);
      }
    }
  }
}

class logService extends service {
  class Packet shares service.Packet { }
  class SomeService shares service.SomeService {
    str handle(Packet p) {
      this.handled = this.handled + 1;
      return "[log] handled:" + p.payload;
    }
  }
  class EchoService shares service.EchoService { }
  class Logger {
    int entries = 0;
    void log(str line) { this.entries = this.entries + 1; }
  }
  class Dispatcher shares service.Dispatcher\logger {
    Logger logger;
    str dispatch(Packet p) {
      this.logger.log("dispatch");
      if (p.kind == 0) {
        return this.s.handle(p);
      } else {
        return this.e.handle(p);
      }
    }
  }
}

class Server {
  service.Dispatcher disp;
  // Evolution code (under 10 lines, cf. §7.4): a cast pins the family,
  // one view change evolves the dispatcher; everything else is lazy.
  void evolve() sharing service!.Dispatcher -> logService!.Dispatcher\logger {
    final service!.Dispatcher d = (cast service!.Dispatcher)this.disp;
    final logService!.Dispatcher\logger d2 =
      (view logService!.Dispatcher\logger)d;
    d2.logger = new logService.Logger();
    this.disp = d2;
  }
}
"#;

/// A complete program with the given `main` body.
pub fn program(main_body: &str) -> String {
    format!("{FAMILIES}\nmain {{\n{main_body}\n}}")
}

#[cfg(test)]
mod tests {
    use crate::Compiler;

    fn run(main_body: &str) -> Vec<String> {
        let src = super::program(main_body);
        let compiled = Compiler::new()
            .compile(&src)
            .unwrap_or_else(|e| panic!("service example does not typecheck:\n{e}"));
        compiled
            .run()
            .unwrap_or_else(|e| panic!("runtime: {e}"))
            .output
    }

    #[test]
    fn families_typecheck() {
        run("print 1;");
    }

    #[test]
    fn evolution_switches_behaviour_without_restart() {
        let out = run("final service!.SomeService s = new service.SomeService();
             final service!.EchoService e = new service.EchoService();
             final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
             final Server srv = new Server { disp = d };
             final service!.Packet p0 = new service.Packet { kind = 0, payload = \"a\" };
             final service!.Packet p1 = new service.Packet { kind = 1, payload = \"b\" };
             print d.dispatch(p0);
             print d.dispatch(p1);
             srv.evolve();
             // The evolved system accepts packets in its own family;
             // view-dependent types make the version explicit (§7.4), and
             // the packet objects are shared, so the view change is free.
             final logService!.Dispatcher d2 =
               (cast logService!.Dispatcher)srv.disp;
             final logService!.Packet q0 = (view logService!.Packet)p0;
             final logService!.Packet q1 = (view logService!.Packet)p1;
             print d2.dispatch(q0);
             print d2.dispatch(q1);
             // The pre-evolution reference still runs the old code...
             print d.dispatch(p0);
             // ...but state is carried across the evolution: the *same*
             // handler object has now handled three kind-0 packets.
             print s.handled;");
        assert_eq!(
            out,
            vec![
                "handled:a",
                "echo:b",
                "[log] handled:a",
                "echo:b",
                "handled:a",
                "3"
            ]
        );
    }
}
