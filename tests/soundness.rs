//! Property-based soundness evidence (§5): randomly generated well-typed
//! programs never get stuck. The generator builds programs that exercise
//! the core J&s mechanisms — sharing declarations, view changes with
//! masks, duplicated fields, late-bound field types — and the properties
//! assert:
//!
//! 1. the checker accepts them (they are well-typed by construction);
//! 2. execution raises no non-benign runtime error (progress);
//! 3. the CONFIG heap invariant (Fig. 19) holds after execution
//!    (preservation, observed at the heap level);
//! 4. object identity is preserved across all view changes.

use proptest::prelude::*;

/// Parameters of a generated program.
#[derive(Debug, Clone)]
struct ProgSpec {
    /// Number of extra int fields in the base class (with initialisers).
    base_fields: usize,
    /// Number of new int fields in the derived class (uninitialised).
    new_fields: usize,
    /// Object graph size created in main.
    objects: usize,
    /// Whether to include an unshared-typed field (duplicated, Fig. 5).
    duplicated_field: bool,
    /// How many of the objects get explicitly re-viewed.
    viewed: usize,
    /// Whether to initialise and read the new fields after viewing.
    init_new: bool,
}

fn spec_strategy() -> impl Strategy<Value = ProgSpec> {
    (
        0usize..4,
        0usize..3,
        1usize..6,
        any::<bool>(),
        0usize..6,
        any::<bool>(),
    )
        .prop_map(
            |(base_fields, new_fields, objects, duplicated_field, viewed, init_new)| ProgSpec {
                base_fields,
                new_fields,
                objects,
                duplicated_field,
                viewed,
                init_new,
            },
        )
}

/// Renders a program from a spec. Well-typed by construction: every view
/// change carries masks for all new fields (and the duplicated field),
/// and masked fields are only read after assignment.
fn render(spec: &ProgSpec) -> String {
    let mut base_members = String::new();
    for i in 0..spec.base_fields {
        base_members.push_str(&format!("    int b{i} = {i};\n"));
    }
    if spec.duplicated_field {
        base_members.push_str("    D g = new D();\n");
    }
    base_members.push_str("    int tag() { return 1; }\n");

    let mut derived_members = String::new();
    for i in 0..spec.new_fields {
        derived_members.push_str(&format!("    int n{i};\n"));
    }
    derived_members.push_str("    int tag() { return 2; }\n");

    // Mask set for the base->derived view: new fields (uninitialised) and
    // nothing else (the duplicated field g forwards base->derived, §3.3).
    let masks: Vec<String> = (0..spec.new_fields).map(|i| format!("\\n{i}")).collect();
    let mask_str = masks.join("");

    let (d_decl, d_base, e_decl) = if spec.duplicated_field {
        (
            "  class D { int w = 7; }\n",
            "  class D shares Base.D { }\n  class E extends D { int z = 9; }\n",
            "",
        )
    } else {
        ("", "", "")
    };

    let mut main = String::new();
    for o in 0..spec.objects {
        main.push_str(&format!("  final Base!.C c{o} = new Base.C();\n"));
        main.push_str(&format!("  print c{o}.tag();\n"));
    }
    for v in 0..spec.viewed.min(spec.objects) {
        main.push_str(&format!(
            "  final Derived!.C{mask_str} d{v} = (view Derived!.C{mask_str})c{v};\n"
        ));
        main.push_str(&format!("  print d{v}.tag();\n"));
        main.push_str(&format!("  print c{v} == d{v};\n"));
        if spec.init_new {
            for i in 0..spec.new_fields {
                main.push_str(&format!("  d{v}.n{i} = {i} + 100;\n"));
                main.push_str(&format!("  print d{v}.n{i};\n"));
            }
        }
        for i in 0..spec.base_fields {
            main.push_str(&format!("  print d{v}.b{i};\n"));
        }
        if spec.duplicated_field {
            // Reading g through the derived view forwards to the base copy.
            main.push_str(&format!("  print d{v}.g.w;\n"));
        }
    }
    format!(
        "class Base {{\n{d_decl}  class C {{\n{base_members}  }}\n}}\n\
         class Derived extends Base {{\n{d_base}{e_decl}  class C shares Base.C {{\n{derived_members}  }}\n}}\n\
         main {{\n{main}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_are_sound(spec in spec_strategy()) {
        let src = render(&spec);
        let prog = jns_syntax::parse(&src)
            .unwrap_or_else(|e| panic!("generator produced unparsable code: {e}\n{src}"));
        let checked = jns_types::check(&prog).unwrap_or_else(|es| {
            panic!(
                "generator produced ill-typed code: {}\n{src}",
                es.iter().map(|e| e.message.clone()).collect::<Vec<_>>().join("; ")
            )
        });
        let mut m = jns_eval::Machine::new(&checked).with_fuel(2_000_000);
        match m.run() {
            Ok(_) => {}
            Err(e) if e.is_benign() => {}
            Err(e) => panic!("soundness violation: {e}\n{src}"),
        }
        // CONFIG invariant (Fig. 19): the heap stays well-formed.
        let violations = m.check_config();
        prop_assert!(violations.is_empty(), "heap invariant broken: {violations:?}\n{src}");
        // Identity: every `ci == di` printed true.
        for (i, line) in m.output.iter().enumerate() {
            if line == "false" {
                panic!("identity lost at output line {i}\n{src}");
            }
        }
        // Backend equivalence: the bytecode VM never gets stuck either,
        // and produces identical printed output on every generated program.
        match jns_vm::run(&checked, Some(2_000_000)) {
            Ok(out) => prop_assert_eq!(&out.output, &m.output, "backends diverge on\n{}", src),
            Err(e) if e.is_benign() => {}
            Err(e) => panic!("VM soundness violation: {e}\n{src}"),
        }
    }

    /// Reading a new field *without* initialising it is ill-typed: the
    /// checker must reject the mask violation.
    #[test]
    fn mask_violations_are_rejected(nf in 1usize..3) {
        let src = format!(
            "class Base {{ class C {{ }} }}\n\
             class Derived extends Base {{ class C shares Base.C {{ int n0; }} }}\n\
             main {{\n\
               final Base!.C c = new Base.C();\n\
               final Derived!.C\\n0 d = (view Derived!.C\\n0)c;\n\
               print d.n{};\n\
             }}",
            nf - 1
        );
        let prog = jns_syntax::parse(&src).expect("parses");
        let r = jns_types::check(&prog);
        prop_assert!(r.is_err(), "mask violation accepted:\n{src}");
    }

    /// Viewing into an unrelated (non-sharing) family is always rejected.
    #[test]
    fn unrelated_views_are_rejected(n in 1usize..4) {
        let src = format!(
            "class A {{ class C {{ int x = {n}; }} }}\n\
             class B extends A {{ class C {{ }} }}\n\
             main {{\n\
               final A!.C a = new A.C();\n\
               final B!.C b = (view B!.C)a;\n\
             }}"
        );
        let prog = jns_syntax::parse(&src).expect("parses");
        prop_assert!(jns_types::check(&prog).is_err());
    }
}
