//! Differential coverage for the VM's profile-guided dispatch engine:
//! superinstruction fusion and IC-guided quickening must be *observably
//! free*. Engine-on and engine-off runs produce byte-identical output,
//! values, errors, and semantic statistics over the whole paper corpus —
//! including under a tight heap limit, across random knob combinations
//! (against the tree-walking reference), through a view-guard failure
//! that forces de-quickening, and across serve pools of every size.
//!
//! The one intentional difference: fusion collapses instruction pairs,
//! so `Stats::steps` differs between fused and unfused bytecode (it is a
//! property of the compiled program, identical across runs of the same
//! bytecode). Quickening is a strict one-for-one rewrite, so with fusion
//! fixed, even `steps` must be bit-identical with quickening on or off.

use jns_core::{Backend, Compiler, Error};
use jns_eval::RtError;
use jns_serve::{serve_batch, ServeConfig};
use proptest::prelude::*;

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};

/// The observable result of one run, minus `steps` (see module docs).
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok {
        output: Vec<String>,
        value: String,
        allocs: u64,
        calls: u64,
        views_explicit: u64,
        views_implicit: u64,
    },
    Runtime(RtError),
}

/// Runs `src` on the VM with the given engine knobs.
fn run_vm(
    src: &str,
    fuse: bool,
    quicken: bool,
    heap_limit: Option<usize>,
) -> (Outcome, jns_eval::Stats) {
    let mut compiler = Compiler::new()
        .with_backend(Backend::Vm)
        .with_fusion(fuse)
        .with_quickening(quicken);
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    let compiled = compiler.compile(src).expect("corpus program compiles");
    match compiled.run() {
        Ok(out) => {
            let stats = out.stats;
            (
                Outcome::Ok {
                    output: out.output,
                    value: format!("{:?}", out.value),
                    allocs: stats.allocs,
                    calls: stats.calls,
                    views_explicit: stats.views_explicit,
                    views_implicit: stats.views_implicit,
                },
                stats,
            )
        }
        Err(Error::Runtime(e)) => (Outcome::Runtime(e), jns_eval::Stats::default()),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

fn whole_corpus() -> impl Iterator<Item = (&'static str, &'static str)> {
    PAPER_EXAMPLES.iter().chain(PAPER_FIGURES).copied()
}

/// Engine fully on vs fully off over every corpus program: identical
/// outcomes, and with fusion fixed, quickening never even moves `steps`.
#[test]
fn corpus_engine_on_equals_engine_off() {
    for (name, src) in whole_corpus() {
        let (engine, engine_stats) = run_vm(src, true, true, None);
        let (generic, _) = run_vm(src, false, false, None);
        assert_eq!(engine, generic, "[{name}] engine changed behaviour");
        let (noquicken, noquicken_stats) = run_vm(src, true, false, None);
        assert_eq!(engine, noquicken, "[{name}] quickening changed behaviour");
        assert_eq!(
            engine_stats.steps, noquicken_stats.steps,
            "[{name}] quickening must be a strict 1:1 instruction rewrite"
        );
    }
}

/// Same equivalence under a tight heap limit: quickened streams and the
/// frame pool must survive mark-compact collections.
#[test]
fn corpus_engine_equivalent_under_heap_pressure() {
    for (name, src) in whole_corpus() {
        let (engine, _) = run_vm(src, true, true, Some(8));
        let (generic, _) = run_vm(src, false, false, Some(8));
        assert_eq!(
            engine, generic,
            "[{name}] engine diverges at --heap-limit 8"
        );
    }
}

/// A hot monomorphic loop under allocation churn at `--heap-limit 8`:
/// the quickened sites survive dozens of compactions (quick-table
/// entries hold views and slots, never heap locations) and the run stays
/// interpreter-identical.
#[test]
fn quickened_sites_survive_compactions() {
    let src = "class W {
                 class Cell {
                   int v = 0;
                   int inc() { this.v = this.v + 1; return this.v; }
                 }
                 class Junk { }
               }
               main {
                 final W.Cell c = new W.Cell();
                 while (c.v < 300) {
                   final W.Junk j = new W.Junk();
                   final int x = c.inc();
                 }
                 print c.v;
               }";
    let vm = Compiler::new()
        .with_backend(Backend::Vm)
        .with_heap_limit(8)
        .compile(src)
        .expect("compiles")
        .run()
        .expect("runs");
    assert_eq!(vm.output, vec!["300"]);
    assert!(
        vm.stats.quickened > 0,
        "the loop's sites never quickened: {:?}",
        vm.stats
    );
    assert_eq!(vm.stats.dequickened, 0, "no view ever changes here");
    assert!(
        vm.stats.gc_runs > 30,
        "expected dozens of compactions, got {}",
        vm.stats.gc_runs
    );
    let tree = Compiler::new()
        .with_heap_limit(8)
        .compile(src)
        .expect("compiles")
        .run()
        .expect("runs");
    assert_eq!(tree.output, vm.output);
    assert_eq!(tree.stats.allocs, vm.stats.allocs);
    assert_eq!(tree.stats.calls, vm.stats.calls);
}

/// A call site quickens on one view, then the receiver is re-viewed into
/// a sharing partner: the guard fails, the site de-quickens, and late
/// binding still picks the partner's override — interpreter-identically.
#[test]
fn view_guard_failure_dequickens() {
    let src = "class Fam {
                 class C {
                   int v = 0;
                   int tag() { return 1; }
                 }
               }
               class Fam2 extends Fam {
                 class C shares Fam.C {
                   int tag() { return 2; }
                 }
               }
               class H {
                 Fam.C t;
                 int n = 0;
                 int go() { return this.t.tag(); }
               }
               main {
                 final Fam!.C c = new Fam.C();
                 final H h = new H { t = c };
                 while (h.n < 40) {
                   final int a = h.go();
                   h.n = h.n + 1;
                 }
                 final Fam2!.C d = (view Fam2!.C)c;
                 h.t = d;
                 print h.go();
                 h.t = c;
                 print h.go();
                 print h.n;
               }";
    let vm = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(src)
        .expect("compiles")
        .run()
        .expect("runs");
    // Late binding through the *view*: the re-viewed receiver dispatches
    // to Fam2's override, and back.
    assert_eq!(vm.output, vec!["2", "1", "40"]);
    assert!(vm.stats.quickened > 0, "hot sites never quickened");
    assert!(
        vm.stats.dequickened >= 1,
        "the guard failure must de-quicken: {:?}",
        vm.stats
    );
    let tree = Compiler::new()
        .compile(src)
        .expect("compiles")
        .run()
        .expect("runs");
    assert_eq!(tree.output, vm.output);
    assert_eq!(tree.stats.calls, vm.stats.calls);
}

/// Serve determinism across pool sizes and engine settings: every worker
/// quickens into its own chunk copies, so 1-, 2-, and 8-worker pools —
/// quickening on or off — produce identical responses and identical
/// aggregate semantic statistics.
#[test]
fn serve_pools_agree_across_engine_settings() {
    type PoolFingerprint = (Vec<String>, (u64, u64, u64, u64, u64));
    let src = jns_serve::workload::service_dispatch(12);
    let requests = 24;
    let mut reference: Option<PoolFingerprint> = None;
    for quicken in [true, false] {
        let compiled = Compiler::new()
            .with_backend(Backend::Vm)
            .with_quickening(quicken)
            .compile(&src)
            .expect("serve workload compiles");
        for workers in [1usize, 2, 8] {
            let cfg = ServeConfig {
                workers,
                queue_cap: 8,
                ..ServeConfig::default()
            };
            let report = serve_batch(&compiled, &cfg, requests);
            assert!(report.uniform(), "responses diverged within the pool");
            let first = report.responses.first().expect("responses");
            assert!(first.is_ok(), "request failed: {:?}", first.error);
            let got = (first.output.clone(), report.aggregate.semantic());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "pool of {workers} workers (quicken={quicken}) diverged"
                ),
            }
        }
    }
}

/// A looping program whose sites run hot enough to fuse *and* quicken,
/// with a mid-program view change: the stress shape for random knobs.
fn knobs_program(iters: u32) -> String {
    format!(
        "class Fam {{
           class C {{
             int v = 0;
             int inc() {{ this.v = this.v + 2; return this.v; }}
             int tag() {{ return 1; }}
           }}
         }}
         class Fam2 extends Fam {{
           class C shares Fam.C {{
             int tag() {{ return 2; }}
           }}
         }}
         main {{
           final Fam!.C o = new Fam.C();
           while (o.v < {iters}) {{
             final int x = o.inc();
           }}
           print o.v;
           print o.tag();
           final Fam2!.C w = (view Fam2!.C)o;
           print w.tag();
           print o == w;
           while (w.v < {iters} + 20) {{
             final int y = w.inc();
           }}
           print w.v;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fuse/quicken/depth/heap-limit combinations never diverge
    /// from the tree-walking reference interpreter.
    #[test]
    fn random_knobs_match_tree_walker(
        iters in 1u32..80,
        fuse in any::<bool>(),
        quicken in any::<bool>(),
        heap_limit in (0usize..72).prop_map(|v| if v < 12 { None } else { Some(v.max(16)) }),
        max_depth in (0u32..72).prop_map(|v| if v < 12 { None } else { Some(v.max(3)) }),
    ) {
        let src = knobs_program(iters * 2);
        let mut vm_compiler = Compiler::new()
            .with_backend(Backend::Vm)
            .with_fusion(fuse)
            .with_quickening(quicken);
        let mut tree_compiler = Compiler::new();
        if let Some(l) = heap_limit {
            vm_compiler = vm_compiler.with_heap_limit(l);
            tree_compiler = tree_compiler.with_heap_limit(l);
        }
        if let Some(d) = max_depth {
            vm_compiler = vm_compiler.with_max_depth(d);
            tree_compiler = tree_compiler.with_max_depth(d);
        }
        let vm = vm_compiler.compile(&src).expect("compiles").run();
        let tree = tree_compiler.compile(&src).expect("compiles").run();
        match (tree, vm) {
            (Ok(t), Ok(v)) => {
                prop_assert_eq!(&t.output, &v.output, "outputs diverge on\n{}", src);
                prop_assert_eq!(format!("{:?}", t.value), format!("{:?}", v.value));
                prop_assert_eq!(t.stats.allocs, v.stats.allocs);
                prop_assert_eq!(t.stats.calls, v.stats.calls);
                prop_assert_eq!(t.stats.views_explicit, v.stats.views_explicit);
                prop_assert_eq!(t.stats.views_implicit, v.stats.views_implicit);
            }
            (Err(Error::Runtime(te)), Err(Error::Runtime(ve))) => {
                prop_assert_eq!(te.to_string(), ve.to_string(), "errors diverge on\n{}", src);
            }
            (t, v) => {
                panic!("one backend failed: tree={t:?} vm={v:?}\n{src}");
            }
        }
    }
}
