//! The performance-trajectory harness, end to end through the real
//! binaries (`jns`, `obs-check`):
//!
//! - **The regression gate sees planted regressions.** `jns bench
//!   --compare` exits 0 on identical documents, 2 when a benchmark's
//!   samples are scaled far past tolerance, and 1 on malformed input —
//!   the three-way protocol CI's warn-vs-fail logic relies on.
//! - **`bench-serve` emits a valid `jns-bench/2` suite** that
//!   `obs-check bench` accepts, with one entry per pool arm and the
//!   speedup as an extra key.
//! - **Dropped trace events surface.** A serve run whose per-worker
//!   trace buffers are too small reports a non-zero drop count in its
//!   telemetry instead of failing silently.

use jns_core::{Backend, Compiler};
use jns_obs::{BenchDoc, BenchEntry, Json};
use jns_serve::{serve_batch, ServeConfig};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jns-bench-harness-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_doc(dir: &std::path::Path, name: &str, samples: &[u64]) -> PathBuf {
    let mut doc = BenchDoc::new("vm", samples.len() as u32, 1);
    doc.benchmarks.push(BenchEntry {
        name: "lambda_translate/vm".into(),
        unit: "us",
        workload: "lambda".into(),
        backend: "vm".into(),
        samples: samples.to_vec(),
    });
    let path = dir.join(name);
    std::fs::write(&path, doc.to_json() + "\n").expect("write doc");
    path
}

fn compare(old: &std::path::Path, new: &std::path::Path) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_jns"))
        .args(["bench", "--compare"])
        .arg(old)
        .arg(new)
        .output()
        .expect("spawn jns")
        .status
        .code()
        .expect("exit code")
}

#[test]
fn compare_gate_distinguishes_clean_regressed_and_malformed() {
    let dir = temp_dir("gate");
    let base = write_doc(&dir, "base.json", &[1000, 1010, 990, 1000, 1005]);
    // Within the 25% band plus noise: clean.
    let wobble = write_doc(&dir, "wobble.json", &[1100, 1110, 1090, 1100, 1105]);
    // A planted 3× slowdown: far past any tolerance.
    let slow = write_doc(&dir, "slow.json", &[3000, 3030, 2970, 3000, 3015]);
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json\n").expect("write");

    assert_eq!(compare(&base, &base), 0, "identical documents are clean");
    assert_eq!(compare(&base, &wobble), 0, "noise stays under the band");
    assert_eq!(compare(&base, &slow), 2, "planted regression must gate");
    assert_eq!(compare(&slow, &base), 0, "improvements never gate");
    assert_eq!(compare(&base, &garbage), 1, "malformed input is an error");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_serve_emits_valid_v2_suite() {
    let dir = temp_dir("serve");
    let out = dir.join("BENCH_serve.json");
    let status = Command::new(env!("CARGO_BIN_EXE_jns"))
        .args([
            "bench-serve",
            "--requests",
            "4",
            "--packets",
            "3",
            "--repeat",
            "2",
            "--workers",
            "2",
            "--json",
        ])
        .arg(&out)
        .status()
        .expect("spawn jns");
    assert!(status.success(), "bench-serve must succeed");

    let check = Command::new(env!("CARGO_BIN_EXE_obs-check"))
        .arg("bench")
        .arg(&out)
        .status()
        .expect("spawn obs-check");
    assert!(check.success(), "obs-check must accept the suite");

    let doc =
        jns_obs::json::parse(std::fs::read_to_string(&out).expect("read").trim()).expect("parses");
    jns_obs::validate_bench(&doc).expect("validates as jns-bench/2");
    let names: Vec<&str> = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("benchmarks")
        .iter()
        .filter_map(|b| b.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["serve_batch/pool1", "serve_batch/pool2"]);
    assert!(
        doc.get("speedup").and_then(Json::as_f64).is_some(),
        "speedup rides along as an extra key"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn undersized_trace_buffers_surface_their_drop_count() {
    // A heap-limited churn program emits one GC event per collection;
    // a 2-event buffer per worker cannot hold a request's worth.
    let src = "class W {
                 class Cell { int v = 0; }
                 class Junk { }
               }
               main {
                 final W.Cell c = new W.Cell();
                 while (c.v < 2000) {
                   final W.Junk j = new W.Junk();
                   c.v = c.v + 1;
                 }
                 print c.v;
               }";
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .with_heap_limit(64)
        .compile(src)
        .expect("compiles");
    let cfg = ServeConfig {
        workers: 2,
        trace: true,
        trace_cap: 2,
        ..ServeConfig::default()
    };
    let report = serve_batch(&compiled, &cfg, 8);
    assert!(report.responses.iter().all(|r| r.is_ok()));
    assert!(
        report.telemetry.trace_dropped > 0,
        "tiny buffers must report drops, not lose them silently"
    );
    // The kept events still respect the cap.
    assert!(report.telemetry.trace_events.len() <= 2 * cfg.workers);
}
