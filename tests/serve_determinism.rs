//! Concurrency determinism suite: the paper examples, the §7.3
//! λ-compiler, and the §2.4 service-evolution workloads run through
//! `jns-serve` with 1, 2, and 8 workers, and every response must be
//! byte-identical — output and rendered value — to the single-threaded
//! VM, with aggregate *semantic* statistics (steps, allocs, calls, view
//! changes) equal to N single-threaded runs. Inline-cache and interning
//! counters are warm-up-dependent (a reused worker VM misses only once),
//! so they are deliberately outside the equality.

use jns_core::{lambda, service, Backend, Compiler};
use jns_serve::{serve_batch, workload, ServeConfig};

const REQUESTS: u64 = 6;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_deterministic(name: &str, src: &str) {
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(src)
        .unwrap_or_else(|e| panic!("[{name}] does not compile: {e}"));
    let expected = compiled
        .run()
        .unwrap_or_else(|e| panic!("[{name}] single-threaded run failed: {e}"));
    // Workers report the final value through `Vm::display_value`; render
    // the single-threaded result the same way (same table, so reference
    // values print identical class names and — thanks to the per-request
    // heap reset — identical locations).
    let expected_value = {
        let mut vm = compiled.spawn_vm();
        let v = vm
            .run()
            .unwrap_or_else(|e| panic!("[{name}] vm run failed: {e}"));
        vm.display_value(&v)
    };

    for workers in WORKER_COUNTS {
        let report = serve_batch(&compiled, &ServeConfig::with_workers(workers), REQUESTS);
        assert_eq!(
            report.responses.len(),
            REQUESTS as usize,
            "[{name}/{workers}w] lost requests"
        );
        for r in &report.responses {
            assert!(
                r.is_ok(),
                "[{name}/{workers}w] request {} failed: {:?}",
                r.id,
                r.error
            );
            assert_eq!(
                r.output, expected.output,
                "[{name}/{workers}w] request {} output diverged",
                r.id
            );
            assert_eq!(
                r.stats.semantic(),
                expected.stats.semantic(),
                "[{name}/{workers}w] request {} semantic stats diverged",
                r.id
            );
        }
        // Values render identically too: heap resets give every request
        // the same location numbering regardless of which worker ran it,
        // so each response must match the single-threaded rendering.
        for r in &report.responses {
            assert_eq!(
                r.value.as_deref(),
                Some(expected_value.as_str()),
                "[{name}/{workers}w] request {} value rendering diverged",
                r.id
            );
        }
        let (s, a, ve, vi, c) = expected.stats.semantic();
        let agg = &report.aggregate;
        assert_eq!(
            (
                agg.steps,
                agg.allocs,
                agg.views_explicit,
                agg.views_implicit,
                agg.calls
            ),
            (
                s * REQUESTS,
                a * REQUESTS,
                ve * REQUESTS,
                vi * REQUESTS,
                c * REQUESTS
            ),
            "[{name}/{workers}w] aggregate semantic stats != {REQUESTS} single runs"
        );
    }
}

#[test]
fn paper_examples_are_deterministic_across_worker_counts() {
    let programs: &[(&str, &str)] = &[
        (
            "figure4_dynamic_evolution",
            r#"class Service {
               class Handler { str handle() { return "basic"; } }
               class Dispatcher {
                 Handler h;
                 str dispatch() { return this.h.handle(); }
               }
             }
             class LogService extends Service {
               class Handler shares Service.Handler {
                 str handle() { return "logged"; }
               }
               class Dispatcher shares Service.Dispatcher {
                 str dispatch() { return "[log] " + this.h.handle(); }
               }
             }
             main {
               final Service!.Handler h = new Service.Handler();
               final Service!.Dispatcher d = new Service.Dispatcher { h = h };
               print d.dispatch();
               final LogService!.Dispatcher d2 = (view LogService!.Dispatcher)d;
               print d2.dispatch();
               print d.dispatch();
             }"#,
        ),
        (
            "figure5_new_field_masking",
            r#"class A1 { class B { int y = 1; } }
             class A2 extends A1 {
               class B shares A1.B { int f; int sum() { return this.y + this.f; } }
             }
             main {
               final A1!.B b1 = new A1.B();
               final A2!.B\f b2 = (view A2!.B\f)b1;
               b2.f = 41;
               print b2.sum();
               print b1 == b2;
             }"#,
        ),
        (
            "loops_compute",
            r#"class Counter { class Cell { int v = 0; } }
             main {
               final Counter.Cell c = new Counter.Cell();
               while (c.v < 10) { c.v = c.v + 1; }
               print c.v;
             }"#,
        ),
    ];
    for (name, src) in programs {
        assert_deterministic(name, src);
    }
}

#[test]
fn lambda_compiler_is_deterministic_across_worker_counts() {
    let mut term =
        r#"new pair.Pair { fst = new pair.Var { x = "a" }, snd = new pair.Var { x = "b" } }"#
            .to_string();
    for i in 0..10 {
        term = format!(r#"new pair.Abs {{ x = "x{i}", e = {term} }}"#);
    }
    let main_body = format!(
        r#"final pair!.Exp root = {term};
           final pair!.Translator tr = new pair.Translator();
           final base!.Exp out = root.translate(tr);
           print out.show();
           print tr.reusedAbs;
           print tr.rebuilt;
           print out == root;"#
    );
    assert_deterministic("lambda_deep_spine", &lambda::program(&main_body));
}

#[test]
fn service_evolution_is_deterministic_across_worker_counts() {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "a" };
        final service!.Packet p1 = new service.Packet { kind = 1, payload = "b" };
        print d.dispatch(p0);
        print d.dispatch(p1);
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        final logService!.Packet q1 = (view logService!.Packet)p1;
        print d2.dispatch(q0);
        print d2.dispatch(q1);
        print d.dispatch(p0);
        print s.handled;"#;
    assert_deterministic("service_evolution", &service::program(main_body));
}

#[test]
fn dispatch_batch_workload_is_deterministic_across_worker_counts() {
    assert_deterministic("service_dispatch_batch", &workload::service_dispatch(24));
}
