//! Table 2's scenario written in the J&s *language* itself (interpreted):
//! two families share binary-tree classes; a view change on the root
//! adapts the whole tree; traversal behaviour follows the view.

use jns_core::Compiler;

const FAMILIES: &str = r#"
class Base {
  class Node { int sum() { return 1; } }
  class Fork extends Node {
    Node left;
    Node right;
    int sum() { return 1 + this.left.sum() + this.right.sum(); }
  }
}
class Display extends Base adapts Base {
  class Node { int sum() { return 2; } }
  class Fork {
    int sum() { return 2 + this.left.sum() + this.right.sum(); }
  }
}
class Builder {
  Base!.Node build(int h) {
    if (h == 0) {
      return new Base.Node();
    } else {
      final Base!.Node l = this.build(h - 1);
      final Base!.Node r = this.build(h - 1);
      return new Base.Fork { left = l, right = r };
    }
  }
}
"#;

#[test]
fn whole_tree_adapts_with_one_view_change() {
    let h = 8;
    let nodes = (1 << (h + 1)) - 1;
    let main_body = format!(
        "final Builder b = new Builder();
         final Base!.Node root = b.build({h});
         print root.sum();
         final Display!.Node d = (view Display!.Node)root;
         print d.sum();
         print root.sum();
         print root == d;"
    );
    let src = format!("{FAMILIES}\nmain {{\n{main_body}\n}}");
    let out = Compiler::new().compile(&src).unwrap().run().unwrap();
    assert_eq!(
        out.output,
        vec![
            nodes.to_string(),       // every node counts 1 in Base
            (2 * nodes).to_string(), // every node counts 2 through Display
            nodes.to_string(),       // the old reference is untouched
            "true".to_string(),
        ]
    );
}

#[test]
fn interpreter_stats_show_lazy_views() {
    let main_body = "final Builder b = new Builder();
         final Base!.Node root = b.build(6);
         final Display!.Node d = (view Display!.Node)root;
         print d.sum();";
    let src = format!("{FAMILIES}\nmain {{\n{main_body}\n}}");
    let compiled = Compiler::new().compile(&src).unwrap();
    let out = compiled.run().unwrap();
    assert_eq!(out.stats.views_explicit, 1, "one explicit view change");
    assert!(
        out.stats.views_implicit > 100,
        "children re-viewed lazily: {}",
        out.stats.views_implicit
    );
}
