//! Sampling-profiler invariants, root-level (cross-crate):
//!
//! - **Sample counts are stride accounting.** The sampler fires after
//!   every successfully executed instruction, so a run that executes
//!   `steps` instructions with stride `k` takes exactly `⌊steps / k⌋`
//!   samples — no more, no fewer, deterministically.
//! - **Attribution is consistent with the chunk profile.** Every frame
//!   name in a collapsed stack is a chunk the run actually executed
//!   (it appears in `chunk_profile`), and per-stack counts sum to the
//!   total taken.
//! - **Sampling is unobservable.** Running every corpus program with
//!   the sampler armed produces byte-identical output, value, and
//!   statistics to running without it, on both backends (the
//!   tree-walker ignores the stride entirely).
//! - **Folded output is well-formed.** `folded_lines` over a real run
//!   validates, and the leaf totals match the stride-predicted count.

use jns_core::{Backend, Compiler, RunOptions, RunOutput};
use std::collections::HashSet;

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};

fn corpus_programs() -> impl Iterator<Item = (&'static str, &'static str)> {
    PAPER_EXAMPLES.iter().chain(PAPER_FIGURES.iter()).copied()
}

/// The observable footprint of a run: everything except the sampler's
/// own output.
fn footprint(out: &RunOutput) -> (Vec<String>, String, String) {
    (
        out.output.clone(),
        format!("{:?}", out.value),
        format!("{:?}", out.stats),
    )
}

fn run_sampled(src: &str, stride: u64) -> RunOutput {
    Compiler::new()
        .with_backend(Backend::Vm)
        .compile(src)
        .expect("compiles")
        .run_with(
            Backend::Vm,
            RunOptions {
                trace: None,
                sample_stride: Some(stride),
            },
        )
        .expect("runs")
}

#[test]
fn sample_count_is_exact_stride_accounting() {
    for (name, src) in corpus_programs() {
        for stride in [1u64, 7, 101] {
            let out = run_sampled(src, stride);
            let samples = out.samples.as_ref().unwrap_or_else(|| {
                panic!("{name}: sampling was requested but no samples came back")
            });
            assert_eq!(samples.stride, stride, "{name}");
            assert_eq!(
                samples.taken,
                out.stats.steps / stride,
                "{name}: {} steps at stride {stride}",
                out.stats.steps
            );
            let total: u64 = samples.stacks.iter().map(|(_, n)| n).sum();
            assert_eq!(total, samples.taken, "{name}: stack counts must sum");
        }
    }
}

#[test]
fn folded_stacks_attribute_to_executed_chunks() {
    for (name, src) in corpus_programs() {
        let out = run_sampled(src, 3);
        let executed: HashSet<&str> = out
            .chunk_profile
            .iter()
            .map(|(chunk, _)| chunk.as_str())
            .collect();
        let samples = out.samples.as_ref().expect("samples");
        for (stack, count) in &samples.stacks {
            assert!(*count > 0, "{name}: zero-count stack {stack:?}");
            for frame in stack.split(';') {
                assert!(
                    executed.contains(frame),
                    "{name}: sampled frame {frame:?} never appears in the chunk profile"
                );
            }
        }
        // A deep enough stride-3 run over a real program must sample
        // *something*; an empty profile would mean the hook is dead.
        if out.stats.steps >= 3 {
            assert!(!samples.stacks.is_empty(), "{name}: no stacks sampled");
        }
        let folded = jns_obs::folded_lines(&samples.stacks);
        if !samples.stacks.is_empty() {
            jns_obs::validate_folded(&folded).expect("folded output validates");
        }
    }
}

#[test]
fn sampling_is_unobservable_on_both_backends() {
    for (name, src) in corpus_programs() {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let compiled = Compiler::new()
                .with_backend(backend)
                .compile(src)
                .expect("compiles");
            let plain = compiled.run_on(backend).expect("plain run");
            let sampled = compiled
                .run_with(
                    backend,
                    RunOptions {
                        trace: None,
                        sample_stride: Some(5),
                    },
                )
                .expect("sampled run");
            assert_eq!(
                footprint(&plain),
                footprint(&sampled),
                "{name} on {backend:?}: sampling must not perturb execution"
            );
            // The tree-walker has no instruction stream: the stride is
            // documented as ignored, and no samples may come back.
            if backend == Backend::TreeWalk {
                assert!(sampled.samples.is_none(), "{name}");
            }
        }
    }
}

#[test]
fn lambda_compiler_folded_profile_matches_stride_prediction() {
    // The acceptance workload: the λ→SKI translation at benched depth.
    let src = bench::workloads::lambda_source(24);
    let out = run_sampled(&src, 101);
    let samples = out.samples.as_ref().expect("samples");
    assert!(
        !samples.stacks.is_empty(),
        "the λ-compiler run must produce collapsed stacks"
    );
    let predicted = out.stats.steps / 101;
    let leaf_total: u64 = samples.stacks.iter().map(|(_, n)| n).sum();
    // The hook fires exactly every `stride` executed instructions, so
    // the totals agree exactly — far inside the 10% acceptance band.
    assert_eq!(leaf_total, predicted);
    let folded = jns_obs::folded_lines(&samples.stacks);
    jns_obs::validate_folded(&folded).expect("validates");
    // Deep translation recursion: at least one multi-frame stack.
    assert!(
        samples.stacks.iter().any(|(s, _)| s.contains(';')),
        "expected nested call stacks in {folded:?}"
    );
}

#[test]
fn profile_document_carries_samples_only_when_armed() {
    let (_, src) = PAPER_EXAMPLES[0];
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(src)
        .expect("compiles");
    let off = compiled.run_on(Backend::Vm).expect("runs");
    assert!(off.samples.is_none(), "sampler must default to off");

    let on = compiled
        .run_with(
            Backend::Vm,
            RunOptions {
                trace: None,
                sample_stride: Some(2),
            },
        )
        .expect("runs");
    let samples = on.samples.clone().expect("samples");
    let profile = jns_obs::RunProfile {
        backend: "vm".into(),
        program: "corpus".into(),
        counters: vec![("steps", on.stats.steps)],
        chunks: on.chunk_profile.clone(),
        ic_sites: on.ic_profile.clone(),
        histograms: Vec::new(),
        samples: Some(samples),
    };
    let doc = jns_obs::json::parse(&profile.to_json()).expect("parses");
    jns_obs::validate_profile(&doc).expect("validates with samples section");
    assert!(doc.get("samples").is_some());

    // With the sampler off the document must not even carry the key —
    // profiler-off artifacts stay byte-identical to pre-sampler ones.
    let plain = jns_obs::RunProfile {
        samples: None,
        ..profile
    };
    let doc = jns_obs::json::parse(&plain.to_json()).expect("parses");
    assert!(doc.get("samples").is_none());
}
