//! Generational-GC differential suite: the nursery is an *optimisation*,
//! never a semantics change.
//!
//! Three guarantees are pinned here, on **both** backends:
//!
//! 1. **Mode equivalence**: generational-on (nursery + limit),
//!    stop-the-world (limit only), and GC-off (no limit) produce
//!    byte-identical output and semantic statistics on every paper
//!    program and both case studies.
//! 2. **Remembered-set correctness**: a nursery object whose *only*
//!    incoming reference is a field of a tenured object survives minor
//!    collections — the write barrier on `Heap::set` records the
//!    tenured holder, and the minor collection both keeps the child
//!    alive and forwards the holder's cell when the child is promoted.
//! 3. **Randomised equivalence**: property-generated programs mixing
//!    retained chains (tenured survivors), short-lived churn, aliases,
//!    and masked shared views behave identically at nursery sizes 1, 8,
//!    and 64 and with the nursery off, with object identity and view
//!    state preserved across minor *and* major collections.

use jns_core::{lambda, service, Backend, Compiler, Error};
use jns_eval::RtError;
use proptest::prelude::*;

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};

/// The observable result of one run: printed output plus the semantic
/// statistics — everything that must not depend on whether, when, or
/// *how* (minor/major) the collector ran.
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok {
        output: Vec<String>,
        semantic: (u64, u64, u64, u64, u64),
    },
    Runtime(RtError),
}

/// Runs `src` with an explicit GC mode. `Compiler::default()` — not
/// `new()` — so an ambient `JNS_NURSERY` cannot silently change the
/// arms this suite compares.
fn run_mode(
    src: &str,
    backend: Backend,
    heap_limit: Option<usize>,
    nursery: Option<usize>,
) -> (Outcome, jns_core::Stats) {
    let mut compiler = Compiler::default().with_backend(backend);
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    if let Some(n) = nursery {
        compiler = compiler.with_nursery(n);
    }
    let compiled = compiler
        .compile(src)
        .unwrap_or_else(|e| panic!("does not compile: {e}"));
    match compiled.run() {
        Ok(out) => (
            Outcome::Ok {
                output: out.output,
                semantic: out.stats.semantic(),
            },
            out.stats,
        ),
        Err(Error::Runtime(e)) => (Outcome::Runtime(e), jns_core::Stats::default()),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

/// Guarantee 1 across the whole paper corpus and both case studies:
/// generational collection under a tight limit (minors fire even in
/// small programs) changes neither output nor semantic statistics
/// versus the stop-the-world collector or no collector at all.
#[test]
fn generational_equals_stop_the_world_equals_gc_off_on_every_paper_program() {
    let lambda_main = r#"final pair!.Exp p = new pair.Pair {
           fst = new pair.Var { x = "a" },
           snd = new pair.Var { x = "b" } };
         final pair!.Translator t = new pair.Translator();
         final base!.Exp b = p.translate(t);
         print b.show();
         print p == b;
         print t.rebuilt;"#;
    let service_main = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "a" };
        print d.dispatch(p0);
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        print d2.dispatch(q0);
        print s.handled;"#;
    let studies = [
        ("lambda_compiler", lambda::program(lambda_main)),
        ("service_evolution", service::program(service_main)),
    ];
    let all = PAPER_EXAMPLES
        .iter()
        .chain(PAPER_FIGURES.iter())
        .map(|(n, s)| (*n, s.to_string()))
        .chain(studies.iter().map(|(n, s)| (*n, s.clone())));
    for (name, src) in all {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (generational, _) = run_mode(&src, backend, Some(4), Some(2));
            let (stop_the_world, _) = run_mode(&src, backend, Some(4), None);
            let (gc_off, off_stats) = run_mode(&src, backend, None, None);
            assert_eq!(
                generational, stop_the_world,
                "[{name}] {backend:?}: nursery changed observable behaviour"
            );
            assert_eq!(
                stop_the_world, gc_off,
                "[{name}] {backend:?}: GC changed observable behaviour"
            );
            assert_eq!(off_stats.gc_runs, 0, "[{name}] {backend:?}");
        }
    }
}

/// A nursery without a heap limit keeps the collector off entirely —
/// `--nursery` alone never enables collection (the repo-wide "no limit
/// → no GC → byte-identical" invariant).
#[test]
fn nursery_without_a_limit_never_collects() {
    let src = "class W {
                 class Cell { int v = 0; }
                 class Junk { }
               }
               main {
                 final W.Cell c = new W.Cell();
                 while (c.v < 500) {
                   final W.Junk j = new W.Junk();
                   c.v = c.v + 1;
                 }
                 print c.v;
               }";
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (out, stats) = run_mode(src, backend, None, Some(8));
        match out {
            Outcome::Ok { output, .. } => assert_eq!(output, vec!["500"], "{backend:?}"),
            other => panic!("{backend:?}: expected success, got {other:?}"),
        }
        assert_eq!(
            stats.gc_runs, 0,
            "{backend:?}: collector ran without a limit"
        );
        assert_eq!(stats.minor_runs, 0, "{backend:?}");
        assert_eq!(stats.barrier_hits, 0, "{backend:?}");
    }
}

/// Guarantee 2 at the program level: after enough churn to tenure the
/// holder, a freshly allocated object stored into the holder's field is
/// reachable *only* through that tenured cell. Minor collections must
/// keep it alive (via the remembered set) and forward the holder's cell
/// when the child is promoted — dropping either loses the `41`.
#[test]
fn tenured_holder_keeps_nursery_child_alive_through_minors() {
    let src = "class L {
                 class Obj { int v = 0; }
                 class Holder { Obj o = new Obj(); }
                 class Junk { }
                 class St { int n = 0; }
               }
               main {
                 final L!.Holder h = new L.Holder();
                 final L!.St s = new L.St();
                 while (s.n < 64) {
                   final L.Junk j = new L.Junk();
                   s.n = s.n + 1;
                 }
                 while (s.n < 65) {
                   final L!.Obj fresh = new L.Obj();
                   fresh.v = 41;
                   h.o = fresh;
                   s.n = s.n + 1;
                 }
                 while (s.n < 128) {
                   final L.Junk j2 = new L.Junk();
                   s.n = s.n + 1;
                 }
                 print h.o.v;
                 print s.n;
               }";
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (out, stats) = run_mode(src, backend, Some(16), Some(4));
        match out {
            Outcome::Ok { output, .. } => {
                assert_eq!(output, vec!["41", "128"], "{backend:?}")
            }
            other => panic!("{backend:?}: expected success, got {other:?}"),
        }
        assert!(stats.minor_runs > 0, "{backend:?}: no minor collections");
        assert!(
            stats.barrier_hits > 0,
            "{backend:?}: the tenured→nursery store never hit the barrier"
        );
        // And the same program agrees with every other GC mode.
        let (gen_out, _) = run_mode(src, backend, Some(16), Some(4));
        let (stw_out, _) = run_mode(src, backend, Some(16), None);
        let (off_out, _) = run_mode(src, backend, None, None);
        assert_eq!(gen_out, stw_out, "{backend:?}");
        assert_eq!(stw_out, off_out, "{backend:?}");
    }
}

/// Parameters of a generated alloc/set/alias program.
#[derive(Debug, Clone)]
struct GenSpec {
    /// Linked-chain length built through a field (tenured survivors;
    /// each link also fires the write barrier once tenure begins).
    retained: usize,
    /// Short-lived allocations after the chain (nursery garbage).
    churn: usize,
    /// Shared-view pairs created *before* the pressure and checked
    /// after it (identity + masked state across minors and majors).
    views: usize,
    /// Heap limit — small enough that collections fire.
    limit: usize,
}

fn spec_strategy() -> impl Strategy<Value = GenSpec> {
    (0usize..24, 0usize..200, 0usize..4, 4usize..32).prop_map(|(retained, churn, views, limit)| {
        GenSpec {
            retained,
            churn,
            views,
            limit,
        }
    })
}

/// Renders a well-typed program from a spec: view pairs first (so their
/// locations are forwarded through every later collection), then the
/// retained chain, then the churn, then writes and identity checks
/// through the views.
fn render(spec: &GenSpec) -> String {
    let mut main = String::new();
    for v in 0..spec.views {
        main.push_str(&format!("  final A1!.B b{v} = new A1.B();\n"));
        main.push_str(&format!("  final A2!.B\\f v{v} = (view A2!.B\\f)b{v};\n"));
    }
    let total = spec.retained + spec.churn;
    main.push_str("  final L!.St s = new L.St();\n");
    main.push_str(&format!(
        "  while (s.n < {}) {{\n    s.head = new L.Cons {{ next = s.head }};\n    s.n = s.n + 1;\n  }}\n",
        spec.retained
    ));
    main.push_str(&format!(
        "  while (s.n < {total}) {{\n    final L.Junk j = new L.Junk();\n    s.n = s.n + 1;\n  }}\n",
    ));
    for v in 0..spec.views {
        main.push_str(&format!("  v{v}.f = {v} + 40;\n"));
        main.push_str(&format!("  b{v}.y = {v} + 2;\n"));
        main.push_str(&format!("  print v{v}.sum();\n"));
        main.push_str(&format!("  print b{v} == v{v};\n"));
    }
    main.push_str("  print s.n;\n");
    format!(
        "class A1 {{ class B {{ int y = 1; }} }}\n\
         class A2 extends A1 {{\n\
           class B shares A1.B {{ int f; int sum() {{ return this.y + this.f; }} }}\n\
         }}\n\
         class L {{\n\
           class Nil {{ }}\n\
           class Cons extends Nil {{ Nil next; }}\n\
           class St {{ Nil head = new Nil(); int n = 0; }}\n\
           class Junk {{ }}\n\
         }}\n\
         main {{\n{main}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantee 3: on every generated program and both backends, the
    /// GC-off run, the stop-the-world run, and generational runs at
    /// nursery sizes 1, 8, and 64 agree byte-for-byte on output and
    /// semantic statistics — and every printed identity check is true.
    #[test]
    fn generated_programs_agree_across_all_gc_modes(spec in spec_strategy()) {
        let src = render(&spec);
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (baseline, _) = run_mode(&src, backend, None, None);
            if let Outcome::Ok { output, .. } = &baseline {
                // Identity and masked view state survive (trivially: no
                // GC ran) — the generated checks themselves are sound.
                prop_assert!(
                    !output.iter().any(|l| l == "false"),
                    "identity check failed without GC:\n{}", src
                );
            }
            let (stw, _) = run_mode(&src, backend, Some(spec.limit), None);
            prop_assert_eq!(
                &stw, &baseline,
                "{:?}: stop-the-world diverged from GC-off on\n{}", backend, src
            );
            for nursery in [1usize, 8, 64] {
                let (gen, _) = run_mode(&src, backend, Some(spec.limit), Some(nursery));
                prop_assert_eq!(
                    &gen, &baseline,
                    "{:?} nursery={}: generational diverged on\n{}", backend, nursery, src
                );
            }
        }
    }
}
