//! Garbage-collection suite for the shared heap (`jns_eval::Heap`) and
//! its mark-compact tracing collector, on **both** backends.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Liveness under adversarial single requests**: one request
//!    allocating ~1M short-lived objects completes under a small
//!    `--heap-limit` with the peak live heap bounded by the limit —
//!    the §2.4 serving scenario's missing piece (per-request region
//!    resets only protect *across* requests).
//! 2. **Identity survives compaction**: aliased references, masked
//!    views, and view-changed references still denote the same object
//!    after their ℓ is forwarded (the paper's §2.3 invariant — `==` is
//!    location equality and view changes preserve ℓ).
//! 3. **GC is observably free when idle and harmless when active**:
//!    with no limit, behaviour is byte-identical to the pre-GC heaps;
//!    with a tight limit, outputs and semantic statistics still match
//!    the unlimited run on every paper program and both case studies.

use jns_core::{lambda, service, Backend, Compiler, Error};
use jns_eval::RtError;

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};

/// The observable result of one run: printed output plus the semantic
/// statistics (steps, allocs, calls, views — everything that must not
/// depend on whether or when the collector ran).
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok {
        output: Vec<String>,
        semantic: (u64, u64, u64, u64, u64),
    },
    Runtime(RtError),
}

fn run_with(src: &str, backend: Backend, heap_limit: Option<usize>) -> (Outcome, jns_core::Stats) {
    let mut compiler = Compiler::new().with_backend(backend);
    if let Some(l) = heap_limit {
        compiler = compiler.with_heap_limit(l);
    }
    let compiled = compiler
        .compile(src)
        .unwrap_or_else(|e| panic!("does not compile: {e}"));
    match compiled.run() {
        Ok(out) => (
            Outcome::Ok {
                output: out.output,
                semantic: out.stats.semantic(),
            },
            out.stats,
        ),
        Err(Error::Runtime(e)) => (Outcome::Runtime(e), jns_core::Stats::default()),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

/// A program whose `main` allocates `n` short-lived objects in a loop
/// (J&s locals are final, so the loop counter is a heap cell).
fn churn_program(n: u64) -> String {
    format!(
        "class W {{
           class Cell {{ int v = 0; }}
           class Junk {{ }}
         }}
         main {{
           final W.Cell c = new W.Cell();
           while (c.v < {n}) {{
             final W.Junk j = new W.Junk();
             c.v = c.v + 1;
           }}
           print c.v;
         }}"
    )
}

const MILLION: u64 = 1_000_000;
const LIMIT: usize = 512;

/// Guarantee 1: a single request allocating ~1M objects completes on
/// both backends under a 512-object live-heap limit, with `peak_live`
/// never exceeding the limit and (almost) everything reclaimed. Without
/// GC this request grows the heap monotonically to 1M objects.
#[test]
fn million_alloc_request_completes_with_bounded_live_heap() {
    let src = churn_program(MILLION);
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (out, stats) = run_with(&src, backend, Some(LIMIT));
        match out {
            Outcome::Ok { output, .. } => assert_eq!(output, vec![MILLION.to_string()]),
            other => panic!("{backend:?}: expected success, got {other:?}"),
        }
        assert!(stats.gc_runs > 0, "{backend:?}: collector never ran");
        assert!(
            stats.peak_live <= LIMIT as u64,
            "{backend:?}: peak live heap {} exceeds the {LIMIT} limit",
            stats.peak_live
        );
        assert!(
            stats.reclaimed >= MILLION - LIMIT as u64,
            "{backend:?}: only {} of ~{MILLION} dead objects reclaimed",
            stats.reclaimed
        );
        assert_eq!(stats.allocs, MILLION + 1, "{backend:?}: allocs accounting");
    }
}

/// Guarantee 3 on the churn workload: the GC-limited run and the
/// unlimited run produce identical output and semantic statistics.
#[test]
fn million_alloc_request_output_identical_to_unlimited_run() {
    let src = churn_program(MILLION);
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (limited, _) = run_with(&src, backend, Some(LIMIT));
        let (unlimited, stats) = run_with(&src, backend, None);
        assert_eq!(limited, unlimited, "{backend:?}: GC changed behaviour");
        assert_eq!(stats.gc_runs, 0, "{backend:?}: GC ran without a limit");
    }
}

/// Guarantee 2: references created *before* heavy collection pressure —
/// an alias, a shared-partner view, and a masked view — still denote the
/// same object afterwards: writes through one are visible through the
/// others, `==` still sees one location, and masked state written after
/// the churn reads back correctly.
#[test]
fn identity_and_views_survive_compaction() {
    let src = r#"class A1 { class B { int y = 1; } }
         class A2 extends A1 {
           class B shares A1.B { int f; int sum() { return this.y + this.f; } }
         }
         class W {
           class Cell { int v = 0; }
           class Junk { }
         }
         main {
           final A1!.B b1 = new A1.B();
           final A2!.B\f b2 = (view A2!.B\f)b1;
           final A1!.B alias = b1;
           final W.Cell c = new W.Cell();
           while (c.v < 5000) {
             final W.Junk j = new W.Junk();
             c.v = c.v + 1;
           }
           b2.f = 41;
           b1.y = 100;
           print b2.sum();
           print b1 == b2;
           print alias == b1;
           print alias.y;
         }"#;
    let expected = vec!["141", "true", "true", "100"];
    for backend in [Backend::TreeWalk, Backend::Vm] {
        // A limit of 8 forces collections while b1/b2/alias are live and
        // must be forwarded together through dozens of compactions.
        let (out, stats) = run_with(src, backend, Some(8));
        match out {
            Outcome::Ok { output, .. } => assert_eq!(output, expected, "{backend:?}"),
            other => panic!("{backend:?}: expected success, got {other:?}"),
        }
        assert!(stats.gc_runs > 0, "{backend:?}: collector never ran");
        assert!(stats.peak_live <= 8, "{backend:?}: {}", stats.peak_live);
    }
}

/// An object allocated with field initialisers that themselves allocate
/// under collection pressure: the in-flight `this` is a GC root, so the
/// nascent object is neither reclaimed nor left behind by compaction.
#[test]
fn allocation_in_flight_survives_gc_during_initialisers() {
    let src = r#"class F {
           class Pad { }
           class Child { int tag = 7; }
           class Parent {
             Child kid = new Child();
             int probe = 3;
           }
         }
         class W { class Cell { int v = 0; } }
         main {
           final W.Cell c = new W.Cell();
           while (c.v < 200) {
             final F.Parent p = new F.Parent();
             c.v = c.v + p.kid.tag - 6;
           }
           print c.v;
         }"#;
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (out, stats) = run_with(src, backend, Some(4));
        match out {
            Outcome::Ok { output, .. } => assert_eq!(output, vec!["200"], "{backend:?}"),
            other => panic!("{backend:?}: expected success, got {other:?}"),
        }
        assert!(stats.gc_runs > 0, "{backend:?}: collector never ran");
    }
}

/// Guarantee 3 across the whole paper corpus and both case studies: a
/// tight limit (collections fire even in small programs) changes neither
/// output nor semantic statistics on either backend.
#[test]
fn gc_on_equals_gc_off_on_every_paper_program() {
    let lambda_main = r#"final pair!.Exp p = new pair.Pair {
           fst = new pair.Var { x = "a" },
           snd = new pair.Var { x = "b" } };
         final pair!.Translator t = new pair.Translator();
         final base!.Exp b = p.translate(t);
         print b.show();
         print p == b;
         print t.rebuilt;"#;
    let service_main = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "a" };
        print d.dispatch(p0);
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        print d2.dispatch(q0);
        print s.handled;"#;
    let studies = [
        ("lambda_compiler", lambda::program(lambda_main)),
        ("service_evolution", service::program(service_main)),
    ];
    let all = PAPER_EXAMPLES
        .iter()
        .chain(PAPER_FIGURES.iter())
        .map(|(n, s)| (*n, s.to_string()))
        .chain(studies.iter().map(|(n, s)| (*n, s.clone())));
    for (name, src) in all {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (with_gc, _) = run_with(&src, backend, Some(4));
            let (without, _) = run_with(&src, backend, None);
            assert_eq!(
                with_gc, without,
                "[{name}] {backend:?}: GC changed observable behaviour"
            );
        }
    }
}

/// The serving layer bounds worker memory *within* a request: a giant
/// request served under `ServeConfig::heap_limit` reports collections
/// and a bounded peak, and still matches the unlimited answer.
#[test]
fn serve_bounds_worker_heap_within_a_request() {
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(&churn_program(20_000))
        .unwrap();
    let mut cfg = jns_serve::ServeConfig::with_workers(2);
    cfg.queue_cap = 8;
    cfg.heap_limit = Some(64);
    let report = jns_serve::serve_batch(&compiled, &cfg, 6);
    assert_eq!(report.responses.len(), 6);
    assert!(report.uniform(), "responses diverged");
    for r in &report.responses {
        assert_eq!(r.output, vec!["20000"]);
        assert!(r.stats.gc_runs > 0, "worker never collected");
        assert!(r.stats.peak_live <= 64, "peak {}", r.stats.peak_live);
    }
    // The aggregate (what `jns serve --stats` prints) carries the GC
    // counters — the per-worker reclamation is no longer invisible.
    assert!(report.aggregate.gc_runs >= 6);
    assert!(report.aggregate.reclaimed >= 6 * (20_000 - 64));
    assert!(report.aggregate.peak_live <= 64);
}
