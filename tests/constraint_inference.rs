//! The paper's §2.5 future work, implemented: automatic inference of
//! sharing constraints. A view change inside a method that lacks an
//! enabling constraint is inferred from the source's declared type and
//! the written target — and because the inferred constraint is attached
//! to the method signature, Q-OK still re-checks it in every inheriting
//! family, so modular soundness is preserved.

use jns_types::{check_with, CheckOptions};

fn check_opts(src: &str, infer: bool) -> Result<(), String> {
    let prog = jns_syntax::parse(src).map_err(|e| e.to_string())?;
    check_with(
        &prog,
        CheckOptions {
            infer_constraints: infer,
        },
    )
    .map(|_| ())
    .map_err(|es| {
        es.iter()
            .map(|e| e.message.clone())
            .collect::<Vec<_>>()
            .join("\n")
    })
}

const PROGRAM: &str = "
    class AST { class Exp { } }
    class ASTDisplay extends AST adapts AST {
      void show(AST!.Exp e) {
        final Exp t = (view Exp)e; // no `sharing` clause written
      }
    }";

#[test]
fn without_inference_the_constraint_is_required() {
    let err = check_opts(PROGRAM, false).unwrap_err();
    assert!(err.contains("sharing"), "{err}");
}

#[test]
fn with_inference_the_program_checks() {
    check_opts(PROGRAM, true).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn inferred_constraints_are_recheckd_in_derived_families() {
    // A derived family that severs the sharing must still be rejected:
    // the inferred constraint participates in Q-OK like a written one.
    let src = format!(
        "{PROGRAM}
         class Severed extends ASTDisplay {{
           class Exp {{ }} // breaks the sharing relationship
         }}"
    );
    let err = check_opts(&src, true).unwrap_err();
    assert!(err.contains("does not hold"), "{err}");
}

#[test]
fn inference_does_not_accept_genuinely_unshared_views() {
    let src = "
        class A { class C { } }
        class B extends A {
          class C { } // no shares
          void f(A!.C a) { final C c = (view C)a; }
        }";
    let err = check_opts(src, true).unwrap_err();
    assert!(err.contains("sharing"), "{err}");
}

#[test]
fn inferred_program_runs() {
    let prog = jns_syntax::parse(
        "class A { class C { str who() { return \"a\"; } } }
         class B extends A {
           class C shares A.C { str who() { return \"b\"; } }
           str flip(A!.C x) {
             final C y = (view C)x;
             return y.who();
           }
         }
         main {
           final B b = new B();
           final A!.C a = new A.C();
           print b.flip(a);
         }",
    )
    .unwrap();
    let checked = check_with(
        &prog,
        CheckOptions {
            infer_constraints: true,
        },
    )
    .unwrap_or_else(|e| panic!("{e:?}"));
    let mut m = jns_eval::Machine::new(&checked);
    m.run().unwrap();
    assert_eq!(m.output, vec!["b"]);
}
