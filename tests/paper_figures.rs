//! Cross-crate integration tests: every figure of the paper's §2-§3
//! narrative is executed end to end through the public `jns_core` API.

use jns_core::Compiler;

fn run(src: &str) -> Vec<String> {
    Compiler::new()
        .compile(src)
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("run: {e}"))
        .output
}

fn rejected(src: &str) -> String {
    match Compiler::new().compile(src) {
        Ok(_) => panic!("expected rejection"),
        Err(e) => e.to_string(),
    }
}

/// Figure 2: nested inheritance alone (no sharing) — implicit classes,
/// late binding, further binding.
#[test]
fn figure2_nested_inheritance() {
    let out = run(r#"
        class AST {
          class Exp { str show() { return "e"; } }
          class Value extends Exp { str show() { return "v"; } }
          class Binary extends Exp { Exp l; Exp r;
            str show() { return "(" + this.l.show() + this.r.show() + ")"; } }
        }
        class ASTDisplay extends AST {
          class Exp { str display() { return "[" + this.show() + "]"; } }
        }
        main {
          // ASTDisplay.Value is implicit, inherits display through the
          // further-bound ASTDisplay.Exp.
          final ASTDisplay.Value v = new ASTDisplay.Value();
          print v.display();
          // New family objects compose within their family.
          final ASTDisplay!.Exp a = new ASTDisplay.Value();
          final ASTDisplay!.Exp b = new ASTDisplay.Value();
          final ASTDisplay.Binary t = new ASTDisplay.Binary { l = a, r = b };
          print t.display();
        }
    "#);
    assert_eq!(out, vec!["[v]", "[(vv)]"]);
}

/// §2.2: sharing is not subtyping — the sharing declaration does not
/// create subtype relationships between exact types.
#[test]
fn sharing_is_not_subtyping() {
    let msg = rejected(
        r#"
        class A { class C { } }
        class B extends A { class C shares A.C { } }
        main {
          final A!.C a = new A.C();
          final B!.C b = a; // no view change: must NOT typecheck
        }
    "#,
    );
    assert!(msg.contains("cannot bind"), "{msg}");
}

/// §2.3: a view change is not a cast — its target can be from another
/// family entirely, and it always succeeds when it typechecks.
#[test]
fn view_change_is_not_a_cast() {
    let out = run(r#"
        class A { class C { str f() { return "a"; } } }
        class B extends A { class C shares A.C { str f() { return "b"; } } }
        main {
          final A!.C a = new A.C();
          // B!.C is neither a supertype nor a subtype of the run-time view
          // A.C!, yet the view change succeeds.
          final B!.C b = (view B!.C)a;
          print b.f();
          // And viewing back is a no-op on identity.
          final A!.C a2 = (view A!.C)b;
          print a2 == a;
        }
    "#);
    assert_eq!(out, vec!["b", "true"]);
}

/// §2.5: sharing constraints are checked in derived families; a family
/// that severs sharing must override the method.
#[test]
fn severed_sharing_requires_override() {
    let msg = rejected(
        r#"
        class AST { class Exp { } }
        class ASTDisplay extends AST adapts AST {
          void show(AST!.Exp e) sharing AST!.Exp = Exp {
            final Exp t = (view Exp)e;
          }
        }
        class Severed extends ASTDisplay {
          class Exp { } // overrides without sharing
        }
    "#,
    );
    assert!(msg.contains("does not hold"), "{msg}");
    // Overriding the method fixes it.
    run(r#"
        class AST { class Exp { } }
        class ASTDisplay extends AST adapts AST {
          void show(AST!.Exp e) sharing AST!.Exp = Exp {
            final Exp t = (view Exp)e;
          }
        }
        class Severed extends ASTDisplay {
          class Exp { }
          void show(AST!.Exp e) { }
        }
        main { print 1; }
    "#);
}

/// §3.1 / Figure 5: both kinds of unshared state.
#[test]
fn figure5_unshared_state() {
    let out = run(r#"
        class A1 {
          class B { }
          class C { D g = new D(); }
          class D { int v = 5; }
        }
        class A2 extends A1 {
          class B shares A1.B { int f; }
          class C shares A1.C\g { }
          class D shares A1.D { }
          class E extends D { }
        }
        main {
          // New field: masked until written.
          final A1!.B b1 = new A1.B();
          final A2!.B\f b2 = (view A2!.B\f)b1;
          b2.f = 10;
          print b2.f;
          // Unshared-typed field: duplicated; base->derived forwards.
          final A1!.C c1 = new A1.C();
          final A2!.C c2 = (view A2!.C)c1;
          print c2.g.v;
          print c1 == c2;
        }
    "#);
    assert_eq!(out, vec!["10", "5", "true"]);
}

/// §3.2: the derived-to-base direction must mask the duplicated field,
/// because the derived family has subclasses with no base partner.
#[test]
fn derived_to_base_requires_mask() {
    let msg = rejected(
        r#"
        class A1 {
          class C { D g = new D(); }
          class D { }
        }
        class A2 extends A1 {
          class C shares A1.C\g { }
          class D shares A1.D { }
          class E extends D { }
        }
        main {
          final A2!.C c2 = new A2.C();
          final A1!.C c1 = (view A1!.C)c2; // must be (view A1!.C\g)
        }
    "#,
    );
    assert!(msg.contains("sharing"), "{msg}");
}

/// Transitive sharing: sharing is an equivalence relation, so two derived
/// families sharing with the same base share with each other.
#[test]
fn sharing_is_transitive() {
    let out = run(r#"
        class Base { class C { str f() { return "base"; } } }
        class Left extends Base { class C shares Base.C { str f() { return "left"; } } }
        class Right extends Base { class C shares Base.C { str f() { return "right"; } } }
        main {
          final Left!.C l = new Left.C();
          // Left.C ~ Base.C ~ Right.C, so Left -> Right directly.
          final Right!.C r = (view Right!.C)l;
          print r.f();
          print l == r;
        }
    "#);
    assert_eq!(out, vec!["right", "true"]);
}

/// Bidirectional adaptation (§2.2): objects created in the *derived*
/// family can be used by base-family code.
#[test]
fn adaptation_is_bidirectional() {
    let out = run(r#"
        class Service { class H { str go() { return "plain"; } } }
        class Logged extends Service { class H shares Service.H { str go() { return "logged"; } } }
        main {
          final Logged!.H h = new Logged.H();
          final Service!.H s = (view Service!.H)h;
          print s.go();
          print h.go();
        }
    "#);
    assert_eq!(out, vec!["plain", "logged"]);
}

/// Whole-workspace wiring: the jolden kernels and corona experiment are
/// reachable and deterministic through their public APIs.
#[test]
fn substrate_crates_are_wired() {
    let ks = jolden::kernels();
    assert_eq!(ks.len(), 10);
    let c1 = (ks[7].run)(jns_rt::Strategy::Direct, 6);
    let c2 = (ks[7].run)(jns_rt::Strategy::SharedFamily, 6);
    assert_eq!(c1, c2);

    let r = corona::run_evolution(corona::ExperimentConfig {
        nodes: 32,
        objects: 100,
        queries: 400,
        zipf: 1.0,
        seed: 1,
    });
    assert!(r.identity_preserved);
    assert!(r.active.avg_hops <= r.plain.avg_hops);
}
