//! A corpus of ill-typed programs: each must be rejected with a relevant
//! message. This pins down the checker's guarantees.

fn reject(src: &str) -> String {
    let prog = jns_syntax::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    match jns_types::check(&prog) {
        Ok(_) => panic!("accepted ill-typed program:\n{src}"),
        Err(es) => es
            .iter()
            .map(|e| e.message.clone())
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

#[test]
fn unknown_class() {
    assert!(reject("class A { Missing f; }").contains("unknown type name"));
}

#[test]
fn unknown_field() {
    assert!(
        reject("class A { class C { } } main { final A.C c = new A.C(); print c.nope; }")
            .contains("no field")
    );
}

#[test]
fn unknown_method() {
    assert!(
        reject("class A { class C { } } main { final A.C c = new A.C(); c.nope(); }")
            .contains("no method")
    );
}

#[test]
fn bad_arith() {
    assert!(reject("main { print 1 + true; }").contains("+"));
}

#[test]
fn bad_condition() {
    assert!(reject("main { if (1) { } }").contains("bool"));
}

#[test]
fn eq_between_prim_and_object() {
    assert!(
        reject("class A { class C { } } main { final A.C c = new A.C(); print c == 1; }")
            .contains("==")
    );
}

#[test]
fn inheritance_cycle() {
    assert!(reject("class A extends B { } class B extends A { }").contains("cycle"));
}

#[test]
fn field_shadowing() {
    assert!(reject(
        "class A { class C { int x = 1; } }
         class B extends A { class C { int x = 2; } }"
    )
    .contains("shadows"));
}

#[test]
fn sharing_with_non_overridden_class() {
    assert!(reject(
        "class A { class C { } class D { } }
         class B extends A { class C shares A.D { } }"
    )
    .contains("override"));
}

#[test]
fn masked_field_read_via_new() {
    assert!(reject(
        "class A { class C { int x; } }
         main { final A.C!\\x c = new A.C(); print c.x; }"
    )
    .contains("masked"));
}

#[test]
fn view_without_mask_on_new_field() {
    assert!(reject(
        "class A { class C { } }
         class B extends A { class C shares A.C { int f; } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
         }"
    )
    .contains("sharing"));
}

#[test]
fn assignment_to_final_field() {
    assert!(
        reject("class A { class C { final int x = 1; void f() { this.x = 2; } } }")
            .contains("final")
    );
}

#[test]
fn return_in_non_tail_position() {
    assert!(reject("class A { class C { int f() { return 1; print 2; } } }").contains("tail"));
}

#[test]
fn abstract_instantiation() {
    assert!(reject(
        "class A { class C { abstract int f(); } }
         main { final A.C c = new A.C(); }"
    )
    .contains("abstract"));
}

#[test]
fn override_changes_return_type() {
    assert!(reject(
        "class A { class C { int f() { return 1; } } }
         class B extends A { class C { bool f() { return true; } } }"
    )
    .contains("not equivalent"));
}

#[test]
fn cross_family_field_write() {
    assert!(!reject(
        "class F1 { class N { } class Holder { N item = new N(); } }
         class F2 extends F1 { class N { } class Holder { } }
         main {
           final F2.Holder h = new F2.Holder();
           final F1!.N x = new F1.N();
           h.item = x;
         }"
    )
    .is_empty());
}

#[test]
fn view_in_method_without_constraint() {
    assert!(reject(
        "class A { class C { } }
         class B extends A {
           class C shares A.C { }
           void f(A!.C a) { final C c = (view C)a; }
         }"
    )
    .contains("sharing constraint"));
}

#[test]
fn variable_shadowing() {
    assert!(reject("main { final int x = 1; final int x = 2; }").contains("already defined"));
}

#[test]
fn duplicate_method() {
    assert!(
        reject("class A { class C { int f() { return 1; } int f() { return 2; } } }")
            .contains("duplicate method")
    );
}

#[test]
fn duplicate_field() {
    assert!(reject("class A { class C { int x = 1; int x = 2; } }").contains("duplicate field"));
}

#[test]
fn masked_supertype() {
    assert!(
        reject("class A { class C { int x = 1; } class D extends C\\x { } }").contains("masked")
    );
}

#[test]
fn final_field_with_unshared_type_cannot_be_duplicated() {
    assert!(reject(
        "class A1 {
           class C { final D g = new D(); }
           class D { }
         }
         class A2 extends A1 {
           class C shares A1.C\\g { }
           class D shares A1.D { }
           class E extends D { }
         }"
    )
    .contains("final"));
}
