//! Stack-safety suite: deep J&s recursion and deep expression nesting
//! must never abort the process. Both backends run on explicit
//! heap-allocated stacks — the tree-walking interpreter is a CEK-style
//! machine over control/value stacks, the VM keeps an explicit frame
//! vector — so the only limits are heap memory and the configurable
//! recursion-depth knob, whose exhaustion is the benign
//! [`RtError::DepthExceeded`].
//!
//! To make a regression to native recursion fail loudly, evaluation runs
//! on deliberately *small* spawned-thread stacks ([`SMALL_STACK`], far
//! below what per-AST-node native recursion would need at these depths),
//! in the debug profile (see the dedicated CI job, which additionally
//! constrains `RUST_MIN_STACK`). Compilation of the deep-*nesting*
//! sources runs on a large stack: the checker and the bytecode lowering
//! still walk the IR natively, which is fine for static program text —
//! the paper's semantics only demand that *evaluation* depth, which is
//! runtime data, never touches the host stack.

use jns_core::{Backend, Compiler, Error};
use jns_eval::{Machine, RtError, Value, DEFAULT_MAX_DEPTH};
use proptest::prelude::*;

/// 1 MiB: comfortably holds the evaluators' constant-depth loops, but is
/// ~40× too small for the old per-node native recursion at depth 10k in
/// a debug build.
const SMALL_STACK: usize = 1 << 20;

/// Large stack for compiling deep *sources* (checker/lowering recursion
/// is proportional to program text, not runtime behaviour; debug-profile
/// checker frames are large, and an unused stack reservation is only
/// virtual memory).
const BIG_STACK: usize = 512 << 20;

/// Runs `f` on a fresh thread with an explicit stack size, propagating
/// panics. The compiled program is *moved* in (its class table is a
/// single-threaded memo structure, so it is `Send` but not `Sync`) and
/// dropped inside `f`'s thread unless returned.
fn on_stack<T: Send>(stack: usize, f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(stack)
            .spawn_scoped(s, f)
            .expect("spawn test thread")
            .join()
            .expect("test thread panicked")
    })
}

/// A J&s program whose `main` recurses `n + 1` activations deep.
fn rec_program(n: u64) -> String {
    format!(
        "class Rec {{
           class R {{
             int go(int n) {{
               if (n < 1) {{ return 0; }} else {{ return this.go(n - 1) + 1; }}
             }}
           }}
         }}
         main {{ final Rec.R r = new Rec.R(); print r.go({n}); }}"
    )
}

fn outputs(compiled: &jns_core::Compiled, backend: Backend) -> Result<Vec<String>, RtError> {
    match compiled.run_on(backend) {
        Ok(out) => Ok(out.output),
        Err(Error::Runtime(e)) => Err(e),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

/// 10,000-deep J&s recursion completes on both backends in the debug
/// profile on a 1 MiB stack — the acceptance bar for the explicit-stack
/// evaluator.
#[test]
fn deep_recursion_completes_on_both_backends() {
    let compiled = Compiler::new()
        .with_max_depth(20_000)
        .compile(&rec_program(10_000))
        .unwrap();
    compiled.bytecode(); // lower once, before entering the small stack
    on_stack(SMALL_STACK, move || {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let out = outputs(&compiled, backend).unwrap();
            assert_eq!(out, vec!["10000"], "{backend:?}");
        }
    });
}

/// With the default limit, the same program degrades to the identical
/// clean error on both backends — never a process abort.
#[test]
fn deep_recursion_default_limit_is_a_clean_error() {
    let compiled = Compiler::new().compile(&rec_program(10_000)).unwrap();
    compiled.bytecode();
    on_stack(SMALL_STACK, move || {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let err = outputs(&compiled, backend).unwrap_err();
            assert_eq!(
                err,
                RtError::DepthExceeded(DEFAULT_MAX_DEPTH),
                "{backend:?}"
            );
            assert!(err.is_benign());
        }
    });
}

/// 10,000-deep expression nesting (a left-leaning `+` spine) evaluates on
/// a 1 MiB stack on both backends. Expression nesting consumes only the
/// heap-allocated control stack, so no depth override is needed.
#[test]
fn deep_expression_nesting_completes_on_both_backends() {
    let mut src = String::from("main { print 0");
    for _ in 0..10_000 {
        src.push_str(" + 1");
    }
    src.push_str("; }");
    let compiled = on_stack(BIG_STACK, || {
        let c = Compiler::new().compile(&src).unwrap();
        c.bytecode();
        c
    });
    on_stack(SMALL_STACK, move || {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let out = outputs(&compiled, backend).unwrap();
            assert_eq!(out, vec!["10000"], "{backend:?}");
        }
        // The 10k-deep IR spine tears down iteratively too (`CExpr`'s
        // explicit `Drop`), so dropping the program needs no stack either.
        drop(compiled);
    });
}

/// 10,000-deep `let` chains (each binding's body is the rest of the
/// block) evaluate on a 1 MiB stack on both backends.
#[test]
fn deep_let_chains_complete_on_both_backends() {
    let mut main = String::from("  final int x0 = 0;\n");
    for i in 1..=10_000u32 {
        main.push_str(&format!("  final int x{i} = x{} + 1;\n", i - 1));
    }
    main.push_str("  print x10000;\n");
    let src = format!("main {{\n{main}}}");
    let compiled = on_stack(BIG_STACK, || {
        let c = Compiler::new().compile(&src).unwrap();
        c.bytecode();
        c
    });
    on_stack(SMALL_STACK, move || {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let out = outputs(&compiled, backend).unwrap();
            assert_eq!(out, vec!["10000"], "{backend:?}");
        }
        drop(compiled);
    });
}

/// Type-checking is no longer recursive in the number of `let`
/// statements (the one checker recursion the parser's expression-depth
/// limit does not bound, so it scaled with adversarial *source length*):
/// a 50,000-binding chain checks on a 1 MiB stack. Parsing runs on the
/// big stack first — the checker improvement is what is pinned here.
#[test]
fn long_let_chain_checks_on_small_stack() {
    let mut main = String::from("  final int x0 = 0;\n");
    for i in 1..=50_000u32 {
        main.push_str(&format!("  final int x{i} = x{} + 1;\n", i - 1));
    }
    main.push_str("  print x50000;\n");
    let src = format!("main {{\n{main}}}");
    let ast = on_stack(BIG_STACK, || jns_syntax::parse(&src).unwrap());
    on_stack(SMALL_STACK, move || {
        let checked = jns_types::check(&ast).unwrap();
        assert!(checked.main.is_some());
        // The 50k-deep `Let` spine of the lowered IR tears down
        // iteratively too (`CExpr`'s explicit `Drop`).
        drop(checked);
    });
}

/// The parse AST of a 20k-node operator spine drops on a 1 MiB stack
/// (iterative `Drop` on `jns_syntax::ast::Expr`).
#[test]
fn deep_parse_tree_teardown_is_iterative() {
    let mut src = String::from("main { print 0");
    for _ in 0..20_000 {
        src.push_str(" + 1");
    }
    src.push_str("; }");
    on_stack(SMALL_STACK, || {
        let ast = jns_syntax::parse(&src).unwrap();
        drop(ast);
    });
}

/// A 50,000-long linked chain of heap objects tears down on a 1 MiB
/// stack on both backends: `Value` never owns another `Value` (object
/// structure lives in flat heap containers keyed by location), so
/// machine teardown is iterative by construction.
#[test]
fn long_heap_chain_teardown_is_iterative() {
    let src = "class L {
                 class Nil { }
                 class Cons extends Nil { Nil next; }
                 class St { Nil head = new Nil(); int n = 50000; }
               }
               main {
                 final L!.St s = new L.St();
                 while (0 < s.n) {
                   s.head = new L.Cons { next = s.head };
                   s.n = s.n - 1;
                 }
                 print s.n;
               }";
    let compiled = Compiler::new().compile(src).unwrap();
    compiled.bytecode();
    on_stack(SMALL_STACK, move || {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            // The machine (and with it the 50k-object heap) is built,
            // run, and dropped entirely inside the small-stack thread.
            let out = outputs(&compiled, backend).unwrap();
            assert_eq!(out, vec!["0"], "{backend:?}");
        }
    });
}

/// Reuse after error (regression): a failed evaluation must not poison
/// the machine's internal state — the depth counter is restored, and the
/// control stack is rebuilt per evaluation — so a later call on the same
/// machine still has its full depth budget.
#[test]
fn machine_is_reusable_after_errors() {
    let prog = jns_syntax::parse(&rec_program(0)).unwrap();
    let checked = jns_types::check(&prog).unwrap();
    let r_class = checked
        .table
        .lookup_path(&[checked.table.intern("Rec"), checked.table.intern("R")])
        .unwrap();
    let go = checked.table.intern("go");

    let mut m = Machine::new(&checked).with_max_depth(50);
    let obj = m.alloc(r_class, vec![]).unwrap();
    let r = obj.as_ref_val().unwrap().clone();
    // `go(48)` needs 49 activations — nearly the whole budget.
    assert_eq!(
        m.call(r.clone(), go, vec![Value::Int(48)]).unwrap(),
        Value::Int(48)
    );
    // Exceed the limit repeatedly; each failure must leave no residue.
    for _ in 0..3 {
        let err = m.call(r.clone(), go, vec![Value::Int(1_000)]).unwrap_err();
        assert_eq!(err, RtError::DepthExceeded(50));
        assert_eq!(
            m.call(r.clone(), go, vec![Value::Int(48)]).unwrap(),
            Value::Int(48),
            "depth counter poisoned by a previous error"
        );
    }

    // Same contract on the VM.
    let code = jns_vm::compile(&checked);
    let mut vm = jns_vm::Vm::new(&checked, &code).with_max_depth(50);
    let obj = vm.alloc(r_class, vec![]).unwrap();
    let r = obj.as_ref_val().unwrap().clone();
    assert_eq!(
        vm.call(r.clone(), go, vec![Value::Int(48)]).unwrap(),
        Value::Int(48)
    );
    for _ in 0..3 {
        let err = vm.call(r.clone(), go, vec![Value::Int(1_000)]).unwrap_err();
        assert_eq!(err, RtError::DepthExceeded(50));
        assert_eq!(
            vm.call(r.clone(), go, vec![Value::Int(48)]).unwrap(),
            Value::Int(48),
            "VM depth counter poisoned by a previous error"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Depth exhaustion always surfaces as `DepthExceeded(limit)` — the
    /// same benign error, at the same limit, on both backends; runs that
    /// fit the limit complete with the right answer. Never a crash.
    #[test]
    fn depth_exhaustion_is_always_a_clean_error(limit in 1u32..64, n in 0u64..96) {
        let compiled = Compiler::new()
            .with_max_depth(limit)
            .compile(&rec_program(n))
            .unwrap();
        for backend in [Backend::TreeWalk, Backend::Vm] {
            match outputs(&compiled, backend) {
                Ok(out) => {
                    // `go(n)` needs n + 1 activations, so success means n < limit.
                    prop_assert!(n < u64::from(limit), "{backend:?}: {n} activations fit in {limit}?");
                    prop_assert_eq!(&out, &vec![n.to_string()]);
                }
                Err(e) => {
                    prop_assert!(n >= u64::from(limit), "{backend:?}: spurious {e} at depth {n} limit {limit}");
                    prop_assert_eq!(e.clone(), RtError::DepthExceeded(limit));
                    prop_assert!(e.is_benign());
                }
            }
        }
    }

    /// Fuel exhaustion always surfaces as `OutOfFuel` (or completes if
    /// the budget suffices) on both backends. Never a crash.
    #[test]
    fn fuel_exhaustion_is_always_a_clean_error(fuel in 1u64..400) {
        let compiled = Compiler::new()
            .with_fuel(fuel)
            .compile(&rec_program(100))
            .unwrap();
        for backend in [Backend::TreeWalk, Backend::Vm] {
            match outputs(&compiled, backend) {
                Ok(out) => prop_assert_eq!(&out, &vec!["100".to_string()]),
                Err(e) => {
                    prop_assert_eq!(e.clone(), RtError::OutOfFuel);
                    prop_assert!(e.is_benign());
                }
            }
        }
    }
}
