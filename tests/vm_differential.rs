//! Differential suite: every runnable paper-example program (the
//! `jns-eval` paper_examples corpus, the cross-crate paper_figures corpus,
//! and the §7.3 / §2.4 case studies) executes on **both** backends, and
//! the observable results must be identical — printed output, final value
//! (including reference identity, view, and mask sets), error variants and
//! messages, and the semantically meaningful statistics (allocations,
//! calls, explicit and implicit view changes).
//!
//! Error-path coverage: cast failure and fuel exhaustion. Fuel is measured
//! in different units per backend (AST nodes vs VM instructions), so the
//! fuel case asserts that both engines interrupt the program with
//! `OutOfFuel` rather than comparing partial output.

use jns_core::{lambda, service, Backend, Compiler, Error};
use jns_eval::RtError;

/// The observable result of one run.
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok {
        output: Vec<String>,
        value: String,
        allocs: u64,
        calls: u64,
        views_explicit: u64,
        views_implicit: u64,
    },
    Runtime(RtError),
}

fn run_on(compiled: &jns_core::Compiled, backend: Backend) -> Outcome {
    match compiled.run_on(backend) {
        Ok(out) => Outcome::Ok {
            output: out.output,
            value: format!("{:?}", out.value),
            allocs: out.stats.allocs,
            calls: out.stats.calls,
            views_explicit: out.stats.views_explicit,
            views_implicit: out.stats.views_implicit,
        },
        Err(Error::Runtime(e)) => Outcome::Runtime(e),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

fn assert_equivalent(name: &str, src: &str, fuel: Option<u64>) {
    let mut compiler = Compiler::new();
    if let Some(f) = fuel {
        compiler = compiler.with_fuel(f);
    }
    let compiled = compiler
        .compile(src)
        .unwrap_or_else(|e| panic!("[{name}] does not compile: {e}"));
    let tree = run_on(&compiled, Backend::TreeWalk);
    let vm = run_on(&compiled, Backend::Vm);
    assert_eq!(tree, vm, "[{name}] backends disagree");
}

/// Every runnable program from `crates/jns-eval/tests/paper_examples.rs`.
const PAPER_EXAMPLES: &[(&str, &str)] = &[
    (
        "figure3_family_adaptation",
        r#"class AST {
           class Exp { str name = "exp"; str show() { return this.name; } }
           class Value extends Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class TreeDisplay {
           class Node { str display() { return "node"; } }
           class Composite extends Node { }
           class Leaf extends Node { }
         }
         class ASTDisplay extends AST & TreeDisplay {
           class Exp extends Node shares AST.Exp {
             str display() { return "exp:" + this.name; }
           }
           class Value extends Exp & Leaf shares AST.Value {
             str display() { return "value:" + this.name; }
           }
           class Binary extends Exp & Composite shares AST.Binary {
             str display() {
               return "(" + this.l.display() + " " + this.r.display() + ")";
             }
           }
           str show(AST!.Exp e) sharing AST!.Exp = Exp {
             final Exp temp = (view Exp)e;
             return temp.display();
           }
         }
         main {
           final AST!.Exp l = new AST.Value { name = "x" };
           final AST!.Exp r = new AST.Value { name = "y" };
           final AST!.Binary root = new AST.Binary { name = "+", l = l, r = r };
           final ASTDisplay d = new ASTDisplay();
           print d.show(root);
         }"#,
    ),
    (
        "view_change_preserves_identity",
        r#"class A { class C { } }
         class B extends A { class C shares A.C { } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
           print a == b;
         }"#,
    ),
    (
        "figure4_dynamic_evolution",
        r#"class Service {
           class Handler {
             str handle() { return "basic"; }
           }
           class Dispatcher {
             Handler h;
             str dispatch() { return this.h.handle(); }
           }
         }
         class LogService extends Service {
           class Handler shares Service.Handler {
             str handle() { return "logged"; }
           }
           class Dispatcher shares Service.Dispatcher {
             str dispatch() { return "[log] " + this.h.handle(); }
           }
         }
         main {
           final Service!.Handler h = new Service.Handler();
           final Service!.Dispatcher d = new Service.Dispatcher { h = h };
           print d.dispatch();
           final LogService!.Dispatcher d2 = (view LogService!.Dispatcher)d;
           print d2.dispatch();
           print d.dispatch();
         }"#,
    ),
    (
        "figure5_new_field_masking",
        r#"class A1 { class B { int y = 1; } }
         class A2 extends A1 {
           class B shares A1.B { int f; int sum() { return this.y + this.f; } }
         }
         main {
           final A1!.B b1 = new A1.B();
           final A2!.B\f b2 = (view A2!.B\f)b1;
           b2.f = 41;
           print b2.sum();
           print b1 == b2;
         }"#,
    ),
    (
        "duplicated_fields_are_per_family",
        r#"class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int read() { return this.g.tag; } }
         }
         class A2 extends A1 {
           class D shares A1.D { }
           class E extends D { int tag2 = 9; }
           class C shares A1.C\g {
             int read2() { return this.g.tag; }
           }
         }
         main {
           final A1!.C c = new A1.C();
           print c.read();
           final A2!.C c2 = (view A2!.C)c;
           print c2.read2();
         }"#,
    ),
    (
        "config_invariant_program",
        r#"class AST {
           class Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class ASTDisplay extends AST adapts AST { }
         main {
           final AST!.Exp a = new AST.Exp();
           final AST!.Exp b = new AST.Exp();
           final AST!.Binary root = new AST.Binary { l = a, r = b };
           final ASTDisplay!.Binary d = (view ASTDisplay!.Binary)root;
           print d.l == a;
         }"#,
    ),
    (
        "implicit_view_changes_are_lazy",
        r#"class F1 {
           class N { int depth() { return 1; } }
           class Cons extends N { F1[this.class].N next; }
         }
         class F2 extends F1 adapts F1 {
           class N { int depth() { return 2; } }
         }
         main {
           final F1!.N a = new F1.N();
           final F1!.Cons b = new F1.Cons { next = a };
           final F2!.Cons b2 = (view F2!.Cons)b;
           print b2.depth();
           print b2.next.depth();
         }"#,
    ),
    (
        "primitives_end_to_end",
        r#"main {
           final int a = 6;
           final int b = 7;
           print a * b;
           print "x" + "y";
           print 10 % 3;
           print (1 < 2) && !(3 == 4);
         }"#,
    ),
    (
        "loops_compute",
        r#"class Counter { class Cell { int v = 0; } }
         main {
           final Counter.Cell c = new Counter.Cell();
           while (c.v < 10) { c.v = c.v + 1; }
           print c.v;
         }"#,
    ),
];

/// Every runnable program from `tests/paper_figures.rs`.
const PAPER_FIGURES: &[(&str, &str)] = &[
    (
        "figure2_nested_inheritance",
        r#"class AST {
          class Exp { str show() { return "e"; } }
          class Value extends Exp { str show() { return "v"; } }
          class Binary extends Exp { Exp l; Exp r;
            str show() { return "(" + this.l.show() + this.r.show() + ")"; } }
        }
        class ASTDisplay extends AST {
          class Exp { str display() { return "[" + this.show() + "]"; } }
        }
        main {
          final ASTDisplay.Value v = new ASTDisplay.Value();
          print v.display();
          final ASTDisplay!.Exp a = new ASTDisplay.Value();
          final ASTDisplay!.Exp b = new ASTDisplay.Value();
          final ASTDisplay.Binary t = new ASTDisplay.Binary { l = a, r = b };
          print t.display();
        }"#,
    ),
    (
        "view_change_is_not_a_cast",
        r#"class A { class C { str f() { return "a"; } } }
        class B extends A { class C shares A.C { str f() { return "b"; } } }
        main {
          final A!.C a = new A.C();
          final B!.C b = (view B!.C)a;
          print b.f();
          final A!.C a2 = (view A!.C)b;
          print a2 == a;
        }"#,
    ),
    (
        "severed_sharing_fixed_by_override",
        r#"class AST { class Exp { } }
        class ASTDisplay extends AST adapts AST {
          void show(AST!.Exp e) sharing AST!.Exp = Exp {
            final Exp t = (view Exp)e;
          }
        }
        class Severed extends ASTDisplay {
          class Exp { }
          void show(AST!.Exp e) { }
        }
        main { print 1; }"#,
    ),
    (
        "figure5_unshared_state",
        r#"class A1 {
          class B { }
          class C { D g = new D(); }
          class D { int v = 5; }
        }
        class A2 extends A1 {
          class B shares A1.B { int f; }
          class C shares A1.C\g { }
          class D shares A1.D { }
          class E extends D { }
        }
        main {
          final A1!.B b1 = new A1.B();
          final A2!.B\f b2 = (view A2!.B\f)b1;
          b2.f = 10;
          print b2.f;
          final A1!.C c1 = new A1.C();
          final A2!.C c2 = (view A2!.C)c1;
          print c2.g.v;
          print c1 == c2;
        }"#,
    ),
    (
        "sharing_is_transitive",
        r#"class Base { class C { str f() { return "base"; } } }
        class Left extends Base { class C shares Base.C { str f() { return "left"; } } }
        class Right extends Base { class C shares Base.C { str f() { return "right"; } } }
        main {
          final Left!.C l = new Left.C();
          final Right!.C r = (view Right!.C)l;
          print r.f();
          print l == r;
        }"#,
    ),
    (
        "adaptation_is_bidirectional",
        r#"class Service { class H { str go() { return "plain"; } } }
        class Logged extends Service { class H shares Service.H { str go() { return "logged"; } } }
        main {
          final Logged!.H h = new Logged.H();
          final Service!.H s = (view Service!.H)h;
          print s.go();
          print h.go();
        }"#,
    ),
];

#[test]
fn paper_examples_are_equivalent() {
    for (name, src) in PAPER_EXAMPLES {
        assert_equivalent(name, src, None);
    }
}

#[test]
fn paper_figures_are_equivalent() {
    for (name, src) in PAPER_FIGURES {
        assert_equivalent(name, src, None);
    }
}

/// Cast failure: both backends raise the *same* `CastFailed` error (same
/// message) at the same program point.
#[test]
fn cast_failure_is_equivalent() {
    assert_equivalent(
        "cast_checks_view",
        r#"class A { class C { } class D { } }
         main {
           final A!.C c = new A.C();
           print "before";
           final A.D d = (cast A.D)c;
           print "after";
         }"#,
        None,
    );
}

/// Fuel exhaustion: units differ (AST nodes vs instructions), so assert
/// the variant on both backends rather than full-run equivalence.
#[test]
fn fuel_exhaustion_is_equivalent() {
    let src = "main { while (true) { print 1; } }";
    let compiled = Compiler::new().with_fuel(1000).compile(src).unwrap();
    for backend in [Backend::TreeWalk, Backend::Vm] {
        match run_on(&compiled, backend) {
            Outcome::Runtime(RtError::OutOfFuel) => {}
            other => panic!("{backend:?}: expected OutOfFuel, got {other:?}"),
        }
    }
}

/// Guard symmetry: both backends enforce the same configurable depth
/// limit in the same units (method activations plus nested field
/// initialisers) and report the byte-identical `DepthExceeded` error at
/// the identical depth — and runs that fit the limit complete
/// identically.
#[test]
fn depth_exhaustion_is_equivalent() {
    let src = r#"class A {
           class C {
             int go(int n) {
               if (n < 1) { return 0; } else { return this.go(n - 1) + 1; }
             }
           }
         }
         main { final A.C c = new A.C(); print c.go(100000); }"#;
    for limit in [1u32, 7, 100, 2_000] {
        let compiled = Compiler::new().with_max_depth(limit).compile(src).unwrap();
        let tree = run_on(&compiled, Backend::TreeWalk);
        let vm = run_on(&compiled, Backend::Vm);
        assert_eq!(tree, vm, "backends disagree at limit {limit}");
        match tree {
            Outcome::Runtime(RtError::DepthExceeded(l)) => assert_eq!(l, limit),
            other => panic!("expected DepthExceeded({limit}), got {other:?}"),
        }
    }
    // Just inside the limit, both complete with identical output and
    // semantic statistics (51 activations fit in 60).
    let fits = src.replace("c.go(100000)", "c.go(50)");
    let compiled = Compiler::new().with_max_depth(60).compile(&fits).unwrap();
    let tree = run_on(&compiled, Backend::TreeWalk);
    assert_eq!(tree, run_on(&compiled, Backend::Vm));
    match tree {
        Outcome::Ok { output, .. } => assert_eq!(output, vec!["50"]),
        other => panic!("expected success under the limit, got {other:?}"),
    }
}

/// Division by zero is a benign runtime error on both backends.
#[test]
fn division_by_zero_is_equivalent() {
    assert_equivalent(
        "division_by_zero",
        r#"main { final int z = 0; print 1 / z; }"#,
        None,
    );
}

/// The §7.3 lambda-compiler case study: in-place translation with node
/// reuse across three families, including the composed `sumpair` family.
#[test]
fn lambda_compiler_is_equivalent() {
    let mains = [
        (
            "lambda_var",
            r#"final pair!.Var v = new pair.Var { x = "y" };
               final pair!.Translator t = new pair.Translator();
               final base!.Exp b = v.translate(t);
               print b.show();
               print v == b;"#
                .to_string(),
        ),
        (
            "lambda_pair",
            r#"final pair!.Exp p = new pair.Pair {
                 fst = new pair.Var { x = "a" },
                 snd = new pair.Var { x = "b" } };
               final pair!.Translator t = new pair.Translator();
               final base!.Exp b = p.translate(t);
               print b.show();
               print p == b;
               print t.rebuilt;"#
                .to_string(),
        ),
        ("lambda_deep_spine", {
            let mut t = r#"new pair.Pair { fst = new pair.Var { x = "a" }, snd = new pair.Var { x = "b" } }"#.to_string();
            for i in 0..12 {
                t = format!(r#"new pair.Abs {{ x = "x{i}", e = {t} }}"#);
            }
            format!(
                r#"final pair!.Exp root = {t};
                   final pair!.Translator tr = new pair.Translator();
                   final base!.Exp out = root.translate(tr);
                   print tr.reusedAbs;
                   print tr.rebuilt;
                   print out == root;"#
            )
        }),
    ];
    for (name, main_body) in &mains {
        assert_equivalent(name, &lambda::program(main_body), None);
    }
}

/// The §2.4 service-evolution case study: a live dispatcher evolves
/// through a view change; behaviour switches without losing state.
#[test]
fn service_evolution_is_equivalent() {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "a" };
        final service!.Packet p1 = new service.Packet { kind = 1, payload = "b" };
        print d.dispatch(p0);
        print d.dispatch(p1);
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        final logService!.Packet q1 = (view logService!.Packet)p1;
        print d2.dispatch(q0);
        print d2.dispatch(q1);
        print d.dispatch(p0);
        print s.handled;"#;
    assert_equivalent("service_evolution", &service::program(main_body), None);
}
