//! Differential suite: every runnable paper-example program (the
//! `jns-eval` paper_examples corpus, the cross-crate paper_figures corpus,
//! and the §7.3 / §2.4 case studies) executes on **both** backends, and
//! the observable results must be identical — printed output, final value
//! (including reference identity, view, and mask sets), error variants and
//! messages, and the semantically meaningful statistics (allocations,
//! calls, explicit and implicit view changes).
//!
//! Error-path coverage: cast failure and fuel exhaustion. Fuel is measured
//! in different units per backend (AST nodes vs VM instructions), so the
//! fuel case asserts that both engines interrupt the program with
//! `OutOfFuel` rather than comparing partial output.

use jns_core::{lambda, service, Backend, Compiler, Error};

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};
use jns_eval::RtError;

/// The observable result of one run.
#[derive(Debug, PartialEq)]
enum Outcome {
    Ok {
        output: Vec<String>,
        value: String,
        allocs: u64,
        calls: u64,
        views_explicit: u64,
        views_implicit: u64,
    },
    Runtime(RtError),
}

fn run_on(compiled: &jns_core::Compiled, backend: Backend) -> Outcome {
    match compiled.run_on(backend) {
        Ok(out) => Outcome::Ok {
            output: out.output,
            value: format!("{:?}", out.value),
            allocs: out.stats.allocs,
            calls: out.stats.calls,
            views_explicit: out.stats.views_explicit,
            views_implicit: out.stats.views_implicit,
        },
        Err(Error::Runtime(e)) => Outcome::Runtime(e),
        Err(e) => panic!("non-runtime failure: {e}"),
    }
}

fn assert_equivalent(name: &str, src: &str, fuel: Option<u64>) {
    let mut compiler = Compiler::new();
    if let Some(f) = fuel {
        compiler = compiler.with_fuel(f);
    }
    let compiled = compiler
        .compile(src)
        .unwrap_or_else(|e| panic!("[{name}] does not compile: {e}"));
    let tree = run_on(&compiled, Backend::TreeWalk);
    let vm = run_on(&compiled, Backend::Vm);
    assert_eq!(tree, vm, "[{name}] backends disagree");
}

#[test]
fn paper_examples_are_equivalent() {
    for (name, src) in PAPER_EXAMPLES {
        assert_equivalent(name, src, None);
    }
}

#[test]
fn paper_figures_are_equivalent() {
    for (name, src) in PAPER_FIGURES {
        assert_equivalent(name, src, None);
    }
}

/// Cast failure: both backends raise the *same* `CastFailed` error (same
/// message) at the same program point.
#[test]
fn cast_failure_is_equivalent() {
    assert_equivalent(
        "cast_checks_view",
        r#"class A { class C { } class D { } }
         main {
           final A!.C c = new A.C();
           print "before";
           final A.D d = (cast A.D)c;
           print "after";
         }"#,
        None,
    );
}

/// Fuel exhaustion: units differ (AST nodes vs instructions), so assert
/// the variant on both backends rather than full-run equivalence.
#[test]
fn fuel_exhaustion_is_equivalent() {
    let src = "main { while (true) { print 1; } }";
    let compiled = Compiler::new().with_fuel(1000).compile(src).unwrap();
    for backend in [Backend::TreeWalk, Backend::Vm] {
        match run_on(&compiled, backend) {
            Outcome::Runtime(RtError::OutOfFuel) => {}
            other => panic!("{backend:?}: expected OutOfFuel, got {other:?}"),
        }
    }
}

/// Guard symmetry: both backends enforce the same configurable depth
/// limit in the same units (method activations plus nested field
/// initialisers) and report the byte-identical `DepthExceeded` error at
/// the identical depth — and runs that fit the limit complete
/// identically.
#[test]
fn depth_exhaustion_is_equivalent() {
    let src = r#"class A {
           class C {
             int go(int n) {
               if (n < 1) { return 0; } else { return this.go(n - 1) + 1; }
             }
           }
         }
         main { final A.C c = new A.C(); print c.go(100000); }"#;
    for limit in [1u32, 7, 100, 2_000] {
        let compiled = Compiler::new().with_max_depth(limit).compile(src).unwrap();
        let tree = run_on(&compiled, Backend::TreeWalk);
        let vm = run_on(&compiled, Backend::Vm);
        assert_eq!(tree, vm, "backends disagree at limit {limit}");
        match tree {
            Outcome::Runtime(RtError::DepthExceeded(l)) => assert_eq!(l, limit),
            other => panic!("expected DepthExceeded({limit}), got {other:?}"),
        }
    }
    // Just inside the limit, both complete with identical output and
    // semantic statistics (51 activations fit in 60).
    let fits = src.replace("c.go(100000)", "c.go(50)");
    let compiled = Compiler::new().with_max_depth(60).compile(&fits).unwrap();
    let tree = run_on(&compiled, Backend::TreeWalk);
    assert_eq!(tree, run_on(&compiled, Backend::Vm));
    match tree {
        Outcome::Ok { output, .. } => assert_eq!(output, vec!["50"]),
        other => panic!("expected success under the limit, got {other:?}"),
    }
}

/// Division by zero is a benign runtime error on both backends.
#[test]
fn division_by_zero_is_equivalent() {
    assert_equivalent(
        "division_by_zero",
        r#"main { final int z = 0; print 1 / z; }"#,
        None,
    );
}

/// The §7.3 lambda-compiler case study: in-place translation with node
/// reuse across three families, including the composed `sumpair` family.
#[test]
fn lambda_compiler_is_equivalent() {
    let mains = [
        (
            "lambda_var",
            r#"final pair!.Var v = new pair.Var { x = "y" };
               final pair!.Translator t = new pair.Translator();
               final base!.Exp b = v.translate(t);
               print b.show();
               print v == b;"#
                .to_string(),
        ),
        (
            "lambda_pair",
            r#"final pair!.Exp p = new pair.Pair {
                 fst = new pair.Var { x = "a" },
                 snd = new pair.Var { x = "b" } };
               final pair!.Translator t = new pair.Translator();
               final base!.Exp b = p.translate(t);
               print b.show();
               print p == b;
               print t.rebuilt;"#
                .to_string(),
        ),
        ("lambda_deep_spine", {
            let mut t = r#"new pair.Pair { fst = new pair.Var { x = "a" }, snd = new pair.Var { x = "b" } }"#.to_string();
            for i in 0..12 {
                t = format!(r#"new pair.Abs {{ x = "x{i}", e = {t} }}"#);
            }
            format!(
                r#"final pair!.Exp root = {t};
                   final pair!.Translator tr = new pair.Translator();
                   final base!.Exp out = root.translate(tr);
                   print tr.reusedAbs;
                   print tr.rebuilt;
                   print out == root;"#
            )
        }),
    ];
    for (name, main_body) in &mains {
        assert_equivalent(name, &lambda::program(main_body), None);
    }
}

/// The §2.4 service-evolution case study: a live dispatcher evolves
/// through a view change; behaviour switches without losing state.
#[test]
fn service_evolution_is_equivalent() {
    let main_body = r#"
        final service!.SomeService s = new service.SomeService();
        final service!.EchoService e = new service.EchoService();
        final service!.Dispatcher d = new service.Dispatcher { s = s, e = e };
        final Server srv = new Server { disp = d };
        final service!.Packet p0 = new service.Packet { kind = 0, payload = "a" };
        final service!.Packet p1 = new service.Packet { kind = 1, payload = "b" };
        print d.dispatch(p0);
        print d.dispatch(p1);
        srv.evolve();
        final logService!.Dispatcher d2 = (cast logService!.Dispatcher)srv.disp;
        final logService!.Packet q0 = (view logService!.Packet)p0;
        final logService!.Packet q1 = (view logService!.Packet)p1;
        print d2.dispatch(q0);
        print d2.dispatch(q1);
        print d.dispatch(p0);
        print s.handled;"#;
    assert_equivalent("service_evolution", &service::program(main_body), None);
}
