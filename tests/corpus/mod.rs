//! The shared runnable paper-program corpus: every paper-example and
//! paper-figure program exercised by the differential suites. One copy,
//! used by `tests/vm_differential.rs` (backend equivalence) and
//! `tests/gc.rs` (GC-on/GC-off equivalence on both backends).

/// Every runnable program from `crates/jns-eval/tests/paper_examples.rs`.
pub const PAPER_EXAMPLES: &[(&str, &str)] = &[
    (
        "figure3_family_adaptation",
        r#"class AST {
           class Exp { str name = "exp"; str show() { return this.name; } }
           class Value extends Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class TreeDisplay {
           class Node { str display() { return "node"; } }
           class Composite extends Node { }
           class Leaf extends Node { }
         }
         class ASTDisplay extends AST & TreeDisplay {
           class Exp extends Node shares AST.Exp {
             str display() { return "exp:" + this.name; }
           }
           class Value extends Exp & Leaf shares AST.Value {
             str display() { return "value:" + this.name; }
           }
           class Binary extends Exp & Composite shares AST.Binary {
             str display() {
               return "(" + this.l.display() + " " + this.r.display() + ")";
             }
           }
           str show(AST!.Exp e) sharing AST!.Exp = Exp {
             final Exp temp = (view Exp)e;
             return temp.display();
           }
         }
         main {
           final AST!.Exp l = new AST.Value { name = "x" };
           final AST!.Exp r = new AST.Value { name = "y" };
           final AST!.Binary root = new AST.Binary { name = "+", l = l, r = r };
           final ASTDisplay d = new ASTDisplay();
           print d.show(root);
         }"#,
    ),
    (
        "view_change_preserves_identity",
        r#"class A { class C { } }
         class B extends A { class C shares A.C { } }
         main {
           final A!.C a = new A.C();
           final B!.C b = (view B!.C)a;
           print a == b;
         }"#,
    ),
    (
        "figure4_dynamic_evolution",
        r#"class Service {
           class Handler {
             str handle() { return "basic"; }
           }
           class Dispatcher {
             Handler h;
             str dispatch() { return this.h.handle(); }
           }
         }
         class LogService extends Service {
           class Handler shares Service.Handler {
             str handle() { return "logged"; }
           }
           class Dispatcher shares Service.Dispatcher {
             str dispatch() { return "[log] " + this.h.handle(); }
           }
         }
         main {
           final Service!.Handler h = new Service.Handler();
           final Service!.Dispatcher d = new Service.Dispatcher { h = h };
           print d.dispatch();
           final LogService!.Dispatcher d2 = (view LogService!.Dispatcher)d;
           print d2.dispatch();
           print d.dispatch();
         }"#,
    ),
    (
        "figure5_new_field_masking",
        r#"class A1 { class B { int y = 1; } }
         class A2 extends A1 {
           class B shares A1.B { int f; int sum() { return this.y + this.f; } }
         }
         main {
           final A1!.B b1 = new A1.B();
           final A2!.B\f b2 = (view A2!.B\f)b1;
           b2.f = 41;
           print b2.sum();
           print b1 == b2;
         }"#,
    ),
    (
        "duplicated_fields_are_per_family",
        r#"class A1 {
           class D { int tag = 1; }
           class C { D g = new D(); int read() { return this.g.tag; } }
         }
         class A2 extends A1 {
           class D shares A1.D { }
           class E extends D { int tag2 = 9; }
           class C shares A1.C\g {
             int read2() { return this.g.tag; }
           }
         }
         main {
           final A1!.C c = new A1.C();
           print c.read();
           final A2!.C c2 = (view A2!.C)c;
           print c2.read2();
         }"#,
    ),
    (
        "config_invariant_program",
        r#"class AST {
           class Exp { }
           class Binary extends Exp { Exp l; Exp r; }
         }
         class ASTDisplay extends AST adapts AST { }
         main {
           final AST!.Exp a = new AST.Exp();
           final AST!.Exp b = new AST.Exp();
           final AST!.Binary root = new AST.Binary { l = a, r = b };
           final ASTDisplay!.Binary d = (view ASTDisplay!.Binary)root;
           print d.l == a;
         }"#,
    ),
    (
        "implicit_view_changes_are_lazy",
        r#"class F1 {
           class N { int depth() { return 1; } }
           class Cons extends N { F1[this.class].N next; }
         }
         class F2 extends F1 adapts F1 {
           class N { int depth() { return 2; } }
         }
         main {
           final F1!.N a = new F1.N();
           final F1!.Cons b = new F1.Cons { next = a };
           final F2!.Cons b2 = (view F2!.Cons)b;
           print b2.depth();
           print b2.next.depth();
         }"#,
    ),
    (
        "primitives_end_to_end",
        r#"main {
           final int a = 6;
           final int b = 7;
           print a * b;
           print "x" + "y";
           print 10 % 3;
           print (1 < 2) && !(3 == 4);
         }"#,
    ),
    (
        "loops_compute",
        r#"class Counter { class Cell { int v = 0; } }
         main {
           final Counter.Cell c = new Counter.Cell();
           while (c.v < 10) { c.v = c.v + 1; }
           print c.v;
         }"#,
    ),
];

/// Every runnable program from `tests/paper_figures.rs`.
pub const PAPER_FIGURES: &[(&str, &str)] = &[
    (
        "figure2_nested_inheritance",
        r#"class AST {
          class Exp { str show() { return "e"; } }
          class Value extends Exp { str show() { return "v"; } }
          class Binary extends Exp { Exp l; Exp r;
            str show() { return "(" + this.l.show() + this.r.show() + ")"; } }
        }
        class ASTDisplay extends AST {
          class Exp { str display() { return "[" + this.show() + "]"; } }
        }
        main {
          final ASTDisplay.Value v = new ASTDisplay.Value();
          print v.display();
          final ASTDisplay!.Exp a = new ASTDisplay.Value();
          final ASTDisplay!.Exp b = new ASTDisplay.Value();
          final ASTDisplay.Binary t = new ASTDisplay.Binary { l = a, r = b };
          print t.display();
        }"#,
    ),
    (
        "view_change_is_not_a_cast",
        r#"class A { class C { str f() { return "a"; } } }
        class B extends A { class C shares A.C { str f() { return "b"; } } }
        main {
          final A!.C a = new A.C();
          final B!.C b = (view B!.C)a;
          print b.f();
          final A!.C a2 = (view A!.C)b;
          print a2 == a;
        }"#,
    ),
    (
        "severed_sharing_fixed_by_override",
        r#"class AST { class Exp { } }
        class ASTDisplay extends AST adapts AST {
          void show(AST!.Exp e) sharing AST!.Exp = Exp {
            final Exp t = (view Exp)e;
          }
        }
        class Severed extends ASTDisplay {
          class Exp { }
          void show(AST!.Exp e) { }
        }
        main { print 1; }"#,
    ),
    (
        "figure5_unshared_state",
        r#"class A1 {
          class B { }
          class C { D g = new D(); }
          class D { int v = 5; }
        }
        class A2 extends A1 {
          class B shares A1.B { int f; }
          class C shares A1.C\g { }
          class D shares A1.D { }
          class E extends D { }
        }
        main {
          final A1!.B b1 = new A1.B();
          final A2!.B\f b2 = (view A2!.B\f)b1;
          b2.f = 10;
          print b2.f;
          final A1!.C c1 = new A1.C();
          final A2!.C c2 = (view A2!.C)c1;
          print c2.g.v;
          print c1 == c2;
        }"#,
    ),
    (
        "sharing_is_transitive",
        r#"class Base { class C { str f() { return "base"; } } }
        class Left extends Base { class C shares Base.C { str f() { return "left"; } } }
        class Right extends Base { class C shares Base.C { str f() { return "right"; } } }
        main {
          final Left!.C l = new Left.C();
          final Right!.C r = (view Right!.C)l;
          print r.f();
          print l == r;
        }"#,
    ),
    (
        "adaptation_is_bidirectional",
        r#"class Service { class H { str go() { return "plain"; } } }
        class Logged extends Service { class H shares Service.H { str go() { return "logged"; } } }
        main {
          final Logged!.H h = new Logged.H();
          final Service!.H s = (view Service!.H)h;
          print s.go();
          print h.go();
        }"#,
    ),
];
