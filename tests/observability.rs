//! Observability invariants, root-level (cross-crate):
//!
//! - **Tracing is unobservable.** Running every corpus program with a
//!   trace buffer attached produces byte-identical output, value, and
//!   statistics to running without one, on both backends. Every runtime
//!   hook must stay a branch on a `None` sink.
//! - **Trace streams are well-formed.** The JSONL export parses line by
//!   line, carries the `jns-trace/1` schema header, and every event has
//!   its tag's required fields.
//! - **Profiles are well-formed and faithful.** The `jns-profile/1`
//!   document round-trips through the parser, validates, and its
//!   counters agree with the run's `Stats`; per-site IC hits/misses sum
//!   to the aggregate counters.
//! - **Serve telemetry adds up.** Histogram counts equal the response
//!   count, per-worker request counts sum to the total, the queue
//!   high-water mark respects capacity, and the traced request
//!   start/end events pair up per id.

use jns_core::{Backend, Compiler, RunOutput};
use jns_obs::{Json, TraceBuffer, TraceEvent};
use jns_serve::{serve_batch, ServeConfig};

mod corpus;
use corpus::{PAPER_EXAMPLES, PAPER_FIGURES};

fn corpus_programs() -> impl Iterator<Item = (&'static str, &'static str)> {
    PAPER_EXAMPLES.iter().chain(PAPER_FIGURES.iter()).copied()
}

/// The observable footprint of a run. `Stats` is compared via its Debug
/// rendering, which covers every counter field.
fn footprint(out: &RunOutput) -> (Vec<String>, String, String) {
    (
        out.output.clone(),
        format!("{:?}", out.value),
        format!("{:?}", out.stats),
    )
}

#[test]
fn tracing_does_not_change_observable_behaviour_on_either_backend() {
    for (name, src) in corpus_programs() {
        let compiled = Compiler::new()
            .compile(src)
            .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let plain = compiled.run_observed(backend, None);
            let traced =
                compiled.run_observed(backend, Some(TraceBuffer::new(jns_obs::DEFAULT_TRACE_CAP)));
            match (plain, traced) {
                (Ok(p), Ok(t)) => {
                    assert_eq!(
                        footprint(&p),
                        footprint(&t),
                        "{name} on {backend:?}: tracing changed the run"
                    );
                    assert_eq!(
                        p.chunk_profile, t.chunk_profile,
                        "{name} on {backend:?}: tracing changed the chunk profile"
                    );
                    assert!(
                        t.trace.is_some(),
                        "{name}: traced run must return its buffer"
                    );
                    assert!(
                        p.trace.is_none(),
                        "{name}: untraced run must not invent a buffer"
                    );
                }
                (Err(p), Err(t)) => assert_eq!(
                    p.to_string(),
                    t.to_string(),
                    "{name} on {backend:?}: tracing changed the error"
                ),
                (p, t) => {
                    panic!("{name} on {backend:?}: tracing flipped the outcome: {p:?} vs {t:?}")
                }
            }
        }
    }
}

#[test]
fn corpus_trace_streams_are_schema_valid_jsonl() {
    for (name, src) in corpus_programs() {
        let compiled = Compiler::new()
            .with_heap_limit(64) // force GC events into some traces
            .compile(src)
            .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        let Ok(out) = compiled.run_observed(
            Backend::Vm,
            Some(TraceBuffer::new(jns_obs::DEFAULT_TRACE_CAP)),
        ) else {
            continue; // error-path programs covered by the differential above
        };
        let buf = out.trace.expect("traced run returns its buffer");
        let text = jns_obs::jsonl(buf.events(), buf.dropped());
        let mut lines = text.lines();
        let header = jns_obs::json::parse(lines.next().expect("header line"))
            .unwrap_or_else(|e| panic!("{name}: header parses: {e}"));
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(jns_obs::TRACE_SCHEMA),
            "{name}: schema id"
        );
        assert_eq!(
            header.get("events").and_then(Json::as_u64),
            Some(buf.events().len() as u64),
            "{name}: header event count"
        );
        let mut last_t = 0;
        for (i, line) in lines.enumerate() {
            let ev = jns_obs::json::parse(line)
                .unwrap_or_else(|e| panic!("{name} line {}: parses: {e}", i + 2));
            let t = ev
                .get("t_us")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{name} line {}: t_us", i + 2));
            assert!(t >= last_t, "{name} line {}: timestamps ordered", i + 2);
            last_t = t;
            let tag = ev.get("ev").and_then(Json::as_str).expect("ev tag");
            let required: &[&str] = match tag {
                "gc" => &["reclaimed", "live", "peak_live"],
                "ic_miss" => &["kind", "site", "view"],
                "phase" => &["name", "micros"],
                other => panic!("{name}: unexpected event {other:?} in a plain run"),
            };
            for key in required {
                assert!(
                    ev.get(key).is_some(),
                    "{name} line {}: {tag} needs {key}",
                    i + 2
                );
            }
        }
    }
}

/// The sums that must tie a profile back to the run that produced it.
fn assert_profile_faithful(name: &str, out: &RunOutput) {
    let profile = jns_obs::RunProfile {
        backend: "vm".into(),
        program: name.into(),
        counters: vec![
            ("steps", out.stats.steps),
            ("ic_hits", out.stats.ic_hits),
            ("ic_misses", out.stats.ic_misses),
        ],
        chunks: out.chunk_profile.clone(),
        ic_sites: out.ic_profile.clone(),
        histograms: Vec::new(),
        samples: None,
    };
    let doc = jns_obs::json::parse(&profile.to_json())
        .unwrap_or_else(|e| panic!("{name}: profile parses: {e}"));
    jns_obs::validate_profile(&doc).unwrap_or_else(|e| panic!("{name}: profile validates: {e}"));
    let hits: u64 = out.ic_profile.iter().map(|s| s.hits).sum();
    let misses: u64 = out.ic_profile.iter().map(|s| s.misses).sum();
    assert_eq!(
        hits, out.stats.ic_hits,
        "{name}: per-site hits sum to the aggregate"
    );
    assert_eq!(
        misses, out.stats.ic_misses,
        "{name}: per-site misses sum to the aggregate"
    );
    let steps: u64 = out.chunk_profile.iter().map(|(_, n)| n).sum();
    assert_eq!(
        steps, out.stats.steps,
        "{name}: per-chunk instructions sum to steps"
    );
}

#[test]
fn vm_profiles_validate_and_tie_back_to_stats() {
    let mut ran = 0;
    for (name, src) in corpus_programs() {
        let compiled = Compiler::new()
            .with_backend(Backend::Vm)
            .compile(src)
            .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        let Ok(out) = compiled.run() else { continue };
        assert_profile_faithful(name, &out);
        ran += 1;
    }
    assert!(
        ran > 5,
        "corpus should contribute several runnable programs, got {ran}"
    );
}

#[test]
fn serve_telemetry_accounts_for_every_request() {
    const REQUESTS: u64 = 24;
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(&jns_serve::workload::service_dispatch(10))
        .expect("workload compiles");
    let cfg = ServeConfig {
        workers: 3,
        queue_cap: 4,
        trace: true,
        ..ServeConfig::default()
    };
    let report = serve_batch(&compiled, &cfg, REQUESTS);
    assert_eq!(report.responses.len(), REQUESTS as usize);
    let t = &report.telemetry;
    assert_eq!(
        t.queue_wait.count(),
        REQUESTS,
        "one queue-wait sample per request"
    );
    assert_eq!(t.exec.count(), REQUESTS, "one exec sample per request");
    assert_eq!(t.worker_requests.len(), 3, "one request counter per worker");
    assert_eq!(
        t.worker_requests.iter().sum::<u64>(),
        REQUESTS,
        "per-worker request counts sum to the batch size"
    );
    assert!(
        t.queue_high_water <= 4,
        "high water ({}) cannot exceed queue capacity",
        t.queue_high_water
    );
    // Per-response latency fields feed the same histograms.
    assert!(report.responses.iter().all(|r| r.exec_us <= t.exec.max()));

    // Request start/end events pair up, each exactly once per id.
    let mut started = vec![0u32; REQUESTS as usize];
    let mut ended = vec![0u32; REQUESTS as usize];
    for e in &t.trace_events {
        match &e.event {
            TraceEvent::RequestStart { id } => started[*id as usize] += 1,
            TraceEvent::RequestEnd { id, ok, .. } => {
                assert!(*ok, "workload requests succeed");
                ended[*id as usize] += 1;
            }
            _ => {}
        }
        assert!(e.worker.is_some(), "serve events carry their worker id");
    }
    assert!(
        started.iter().all(|&n| n == 1),
        "every id starts exactly once"
    );
    assert!(ended.iter().all(|&n| n == 1), "every id ends exactly once");
    assert!(
        t.trace_events.windows(2).all(|w| w[0].t_us <= w[1].t_us),
        "merged events are time-ordered"
    );
}

#[test]
fn serve_tracing_does_not_change_responses() {
    const REQUESTS: u64 = 12;
    let compiled = Compiler::new()
        .with_backend(Backend::Vm)
        .compile(&jns_serve::workload::service_dispatch(8))
        .expect("workload compiles");
    let base = ServeConfig {
        workers: 2,
        queue_cap: 8,
        ..ServeConfig::default()
    };
    let traced_cfg = ServeConfig {
        trace: true,
        ..base.clone()
    };
    let plain = serve_batch(&compiled, &base, REQUESTS);
    let traced = serve_batch(&compiled, &traced_cfg, REQUESTS);
    // Compare only the scheduling-independent observables: which worker
    // serves a request (and hence how warm its inline caches are) varies
    // run to run regardless of tracing, so per-request cache stats are
    // out of scope here — the single-VM differential above pins those.
    type Stripped = Vec<(u64, Vec<String>, Option<String>, u64, u64)>;
    let strip = |r: &jns_serve::ServeReport| -> Stripped {
        r.responses
            .iter()
            .map(|resp| {
                (
                    resp.id,
                    resp.output.clone(),
                    resp.value.clone(),
                    resp.stats.steps,
                    resp.stats.allocs,
                )
            })
            .collect()
    };
    assert_eq!(
        strip(&plain),
        strip(&traced),
        "tracing changed served responses"
    );
    assert!(
        plain.telemetry.trace_events.is_empty(),
        "no events without trace"
    );
    assert!(
        !traced.telemetry.trace_events.is_empty(),
        "tracing collects events"
    );
    // Scheduling-independent aggregates agree too.
    let agg = |r: &jns_serve::ServeReport| {
        (
            r.aggregate.steps,
            r.aggregate.allocs,
            r.aggregate.calls,
            r.aggregate.views_explicit,
            r.aggregate.views_implicit,
        )
    };
    assert_eq!(agg(&plain), agg(&traced), "tracing changed aggregate stats");
}
